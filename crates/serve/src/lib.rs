//! # alp-serve — the partition-plan compiler as a long-running service
//!
//! The pipeline's economics are "plan once, amortize across many
//! requests": planning a nest is the expensive end (legality analysis,
//! reference classification, exhaustive tile-shape search), while a
//! cached [`PartitionPlan`](alp_plan::PartitionPlan) is an `Arc` clone.
//! This crate turns that into a daemon:
//!
//! * **Wire protocol** ([`protocol`]) — newline-delimited JSON frames
//!   over a local Unix socket, versioned like the plan codec.  Ops:
//!   `plan`, `run`, `stats`, `ping`, `shutdown`.
//! * **Sharded, coalescing cache** — the server fronts
//!   [`ShardedPlanCache`](alp_plan::ShardedPlanCache): per-shard locks
//!   keyed by the structural fingerprint, and N concurrent requests
//!   for the same [`PlanKey`](alp_plan::PlanKey) trigger exactly one
//!   compile.
//! * **Admission control** ([`server`]) — a bounded queue in front of
//!   the worker pool.  Requests that would overflow it are shed with
//!   the stable `ALP0012` code instead of queueing unboundedly; the
//!   deadline (`ALP0007`) and memory-budget (`ALP0009`) guards of the
//!   hardened executor bound each admitted request.
//! * **Graceful degradation** — `run` requests shed earlier than
//!   `plan` requests (they cost strictly more), and cache hits are
//!   served inline from the connection reader, bypassing the queue
//!   entirely — so a saturated worker pool still answers every request
//!   whose plan is already cached.
//! * **Load generator** ([`loadgen`]) — an in-process traffic source
//!   driving tens of thousands of concurrent requests over a
//!   hot/warm/cold Zipf fingerprint mix, measuring p50/p99 latency,
//!   plans/sec, and hit/coalesce/shed counts for `BENCH_serve.json`.
//!
//! The crate depends only on the leaf pipeline crates (`alp-loopir`,
//! `alp-analysis`, `alp-plan`, `alp-runtime`), not on the root `alp`
//! facade — the facade's CLI links *this* crate, and the error-code
//! contract (`ALP0001`…`ALP0012`) is small enough to restate at the
//! boundary ([`ServeError`]).

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod pipeline;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use loadgen::{run_loadgen, LoadGenConfig, LoadGenReport};
pub use protocol::{Request, RequestOp, Response, PROTOCOL_VERSION};
pub use server::{DrainOutcome, ServeConfig, Server, ServerStats};

/// A serve-layer error: a stable `ALP000x` code plus a rendered
/// message.  `Clone` so one failed compile can be shared verbatim with
/// every coalesced waiter (the root `AlpError` owns non-cloneable
/// diagnostics and cannot cross that boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable code (`ALP0001`…`ALP0012`).
    pub code: String,
    /// Human-readable rendering of the underlying failure.
    pub message: String,
}

impl ServeError {
    /// An error with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ServeError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// The `ALP0012` load-shedding error for a queue observed at
    /// `depth` of `capacity`.
    pub fn overloaded(depth: usize, capacity: usize) -> Self {
        ServeError::new(
            "ALP0012",
            format!(
                "server overloaded: admission queue at depth {depth} of {capacity}; \
                 request shed — retry later"
            ),
        )
    }

    /// The `ALP0015` refusal sent while the server is draining: the
    /// request was never admitted, so retrying (against a replacement
    /// instance) is always safe.
    pub fn draining() -> Self {
        ServeError::new(
            "ALP0015",
            "server draining: new work refused; retry against a live instance",
        )
    }

    /// True when this is the `ALP0012` shed error.
    pub fn is_overloaded(&self) -> bool {
        self.code == "ALP0012"
    }

    /// True when this is the `ALP0015` draining refusal.
    pub fn is_draining(&self) -> bool {
        self.code == "ALP0015"
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServeError {}
