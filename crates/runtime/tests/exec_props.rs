//! Property tests: for random legal nests and random rectangular
//! partitions, the parallel executor must (a) produce bitwise-identical
//! results to the sequential reference under every schedule and thread
//! count, and (b) execute every iteration exactly once per repetition.

use alp_loopir::{parse, LoopNest};
use alp_runtime::{rect_tiles, ExecOptions, Executor, Schedule};
use proptest::prelude::*;
use std::collections::HashSet;

/// Per-dimension (lower bound, trip count).
type Bounds = Vec<(i128, i128)>;

fn bounds_strategy(depth: usize) -> impl Strategy<Value = Bounds> {
    proptest::collection::vec((-2i128..=2, 1i128..=5), depth..=depth)
}

fn grid_strategy(depth: usize) -> impl Strategy<Value = Vec<i128>> {
    proptest::collection::vec(1i128..=3, depth..=depth)
}

/// Build a random-but-legal nest source: disjoint identity writes (and
/// optionally an accumulate) reading offset references of a read-only
/// array.  Legality holds by construction: no array is both written and
/// read across iterations, and writes hit distinct elements.
fn nest_source(bounds: &Bounds, template: usize, seq: bool) -> String {
    let depth = bounds.len();
    let idx: Vec<String> = (0..depth).map(|k| format!("i{k}")).collect();
    let id_subs = idx.join(", ");
    let shifted: Vec<String> = idx.iter().map(|n| format!("{n}+1")).collect();
    let shifted_subs = shifted.join(", ");
    // Accumulate target collapses the innermost dimension (all
    // iterations along it race on one element — the Appendix-A case).
    let acc_subs = if depth == 1 {
        "0".to_string()
    } else {
        idx[..depth - 1].join(", ")
    };
    let body = match template {
        0 => format!("A[{id_subs}] = B[{id_subs}] + B[{shifted_subs}];"),
        1 => format!(
            "A[{id_subs}] = B[{shifted_subs}];\n C[{id_subs}] = B[{id_subs}] + B[{id_subs}];"
        ),
        _ => format!("S[{acc_subs}] += B[{id_subs}];"),
    };
    let mut src = String::new();
    if seq {
        src.push_str("doseq (t, 0, 2) {\n");
    }
    for (k, &(lo, trip)) in bounds.iter().enumerate() {
        src.push_str(&format!(
            "doall ({}, {}, {}) {{\n",
            idx[k],
            lo,
            lo + trip - 1
        ));
    }
    src.push_str(&body);
    for _ in 0..depth {
        src.push('}');
    }
    if seq {
        src.push('}');
    }
    src
}

fn check_exact_cover(nest: &LoopNest, grid: &[i128]) {
    let (tiles, _) = rect_tiles(nest, grid).unwrap();
    let mut covered: HashSet<Vec<i64>> = HashSet::new();
    let mut total = 0u64;
    for tile in &tiles {
        tile.for_each_point(|i| {
            assert!(covered.insert(i.to_vec()), "iteration {i:?} covered twice");
            total += 1;
        });
    }
    let expected: HashSet<Vec<i64>> = nest
        .iteration_points()
        .into_iter()
        .map(|p| p.0.iter().map(|&x| x as i64).collect())
        .collect();
    assert_eq!(total as usize, expected.len());
    assert_eq!(covered, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_partitions_execute_exactly(
        spec in (1usize..=3).prop_flat_map(|d| (
            bounds_strategy(d),
            grid_strategy(d),
            0usize..3,
            any::<bool>(),
            any::<bool>(),
            1usize..=4,
        )),
    ) {
        let (bounds, grid, template, seq, dynamic, threads) = spec;
        let src = nest_source(&bounds, template, seq);
        let nest = parse(&src).unwrap();

        // (b) the tiles cover the iteration space exactly once.
        check_exact_cover(&nest, &grid);

        // (a) parallel result is bitwise equal to the sequential
        // reference, and the executed iteration count is exact.
        let exec = Executor::from_grid(&nest, &grid).unwrap();
        let opts = ExecOptions {
            threads,
            schedule: if dynamic { Schedule::Dynamic } else { Schedule::Static },
            ..ExecOptions::default()
        };
        let outcome = exec.verify(0xA1E5_EED0, &opts).unwrap();
        prop_assert!(outcome.matches_reference, "parallel != sequential for:\n{src}");

        let volume: i128 = nest.iteration_count();
        let reps: i128 = nest.seq_repetitions();
        prop_assert_eq!(outcome.report.total_iterations as i128, volume * reps);

        // Per-tile iteration counts add up per repetition as well.
        let per_tile: u64 = outcome.report.per_tile.iter().map(|t| t.iterations).sum();
        prop_assert_eq!(per_tile as i128, volume);
    }

    #[test]
    fn runtime_tiles_agree_with_codegen_assignment(
        spec in (1usize..=3).prop_flat_map(|d| (bounds_strategy(d), grid_strategy(d))),
    ) {
        // The executor's box tiles and codegen's explicit assignment are
        // two spellings of the same partition: running either must give
        // the same answer on the same seed.
        let (bounds, grid) = spec;
        let src = nest_source(&bounds, 0, false);
        let nest = parse(&src).unwrap();
        // assign_rect requires every grid factor ≤ the loop's trip count.
        let grid: Vec<i128> = grid
            .iter()
            .zip(&bounds)
            .map(|(&g, &(_, trip))| g.min(trip))
            .collect();
        let assignment = alp_codegen::assign_rect(&nest, &grid);
        prop_assert!(alp_codegen::is_exact_cover(&nest, &assignment));

        let by_grid = Executor::from_grid(&nest, &grid).unwrap();
        let by_list = Executor::from_assignment(&nest, &assignment).unwrap();
        let opts = ExecOptions::default();

        let store_a = by_grid.seeded_store(99);
        by_grid.run(&store_a, &opts).unwrap();
        let store_b = by_list.seeded_store(99);
        by_list.run(&store_b, &opts).unwrap();
        prop_assert_eq!(store_a.snapshot(), store_b.snapshot());
    }
}

/// Elementary-operation recipe for a random unimodular matrix: each
/// `(a, b, c)` with `a != b` adds `c·row_a` to `row_b` (det preserved)
/// or, when `c == 0`, swaps rows `a` and `b` (det negated).  Starting
/// from the identity, the product is always unimodular.
fn unimodular_ops(depth: usize) -> impl Strategy<Value = Vec<(usize, usize, i128)>> {
    proptest::collection::vec((0..depth, 0..depth, -2i128..=2), 0..=4)
}

fn build_unimodular(depth: usize, ops: &[(usize, usize, i128)]) -> alp_linalg::IMat {
    let mut m = alp_linalg::IMat::identity(depth);
    for &(a, b, c) in ops {
        if a == b {
            continue;
        }
        for k in 0..depth {
            if c == 0 {
                let t = m[(a, k)];
                m[(a, k)] = m[(b, k)];
                m[(b, k)] = t;
            } else {
                let t = c * m[(a, k)];
                m[(b, k)] += t;
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_unimodular_transforms_execute_exactly(
        spec in (1usize..=3).prop_flat_map(|d| (
            bounds_strategy(d),
            grid_strategy(d),
            unimodular_ops(d),
            0usize..3,
            any::<bool>(),
            1usize..=4,
        )),
    ) {
        // The skewed executor — rectangular tiles in j = i·U, kernels
        // composed with U⁻¹, rows clipped exactly — must be bitwise
        // equal to the i-space sequential reference for EVERY
        // unimodular U, and must execute each iteration exactly once.
        let (bounds, grid, ops, template, seq, threads) = spec;
        let src = nest_source(&bounds, template, seq);
        let nest = parse(&src).unwrap();
        let u = build_unimodular(nest.depth(), &ops);
        let t = alp_plan::Transform::new(u, alp_plan::fingerprint_hex(&nest)).unwrap();

        let exec = Executor::from_transformed(&nest, &t, &grid).unwrap();
        let opts = ExecOptions { threads, ..ExecOptions::default() };
        let outcome = exec.verify(0xA1E5_EED0, &opts).unwrap();
        prop_assert!(outcome.matches_reference, "skewed != sequential for U={:?}\n{src}", t.u());

        let volume: i128 = nest.iteration_count();
        let reps: i128 = nest.seq_repetitions();
        prop_assert_eq!(outcome.report.total_iterations as i128, volume * reps);
        let per_tile: u64 = outcome.report.per_tile.iter().map(|t| t.iterations).sum();
        prop_assert_eq!(per_tile as i128, volume);
    }

    #[test]
    fn strided_nests_execute_exactly(
        spec in (1usize..=3).prop_flat_map(|d| (
            bounds_strategy(d),
            proptest::collection::vec(1i128..=3, d..=d),
            grid_strategy(d),
            unimodular_ops(d),
            1usize..=4,
        )),
    ) {
        // Non-unit strides normalize away in the parser; both the
        // rectangular and the skewed executor must still match the
        // sequential reference bitwise on the normalized nest.
        let (bounds, strides, grid, ops, threads) = spec;
        let depth = bounds.len();
        let idx: Vec<String> = (0..depth).map(|k| format!("i{k}")).collect();
        let mut src = String::new();
        for (k, (&(lo, trip), &s)) in bounds.iter().zip(&strides).enumerate() {
            src.push_str(&format!(
                "doall ({}, {}, {}, {}) {{\n", idx[k], lo, lo + s * (trip - 1), s
            ));
        }
        let ids = idx.join(", ");
        src.push_str(&format!("A[{ids}] = B[{ids}] + B[{ids}];"));
        for _ in 0..depth { src.push('}'); }
        let nest = parse(&src).unwrap();
        prop_assert_eq!(nest.iteration_count(), bounds.iter().map(|&(_, t)| t).product::<i128>());

        let opts = ExecOptions { threads, ..ExecOptions::default() };
        let rect = Executor::from_grid(&nest, &grid).unwrap();
        let outcome = rect.verify(0x57A1_DE00, &opts).unwrap();
        prop_assert!(outcome.matches_reference, "rect != sequential for:\n{src}");

        let u = build_unimodular(depth, &ops);
        let t = alp_plan::Transform::new(u, alp_plan::fingerprint_hex(&nest)).unwrap();
        let skewed = Executor::from_transformed(&nest, &t, &grid).unwrap();
        let outcome = skewed.verify(0x57A1_DE00, &opts).unwrap();
        prop_assert!(outcome.matches_reference, "skewed != sequential for U={:?}\n{src}", t.u());
    }
}
