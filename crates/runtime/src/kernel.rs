//! Lowering loop-nest statements into executable per-iteration kernels.
//!
//! Every affine reference `A[Gī + ā]` combined with the array layout's
//! base/strides folds into a single linear form over the *parallel*
//! iteration vector: `element(ī) = c·ī + c₀` (subscripts range over
//! parallel indices only — outer `doseq` loops just repeat the doall).
//! Executing an iteration is then a handful of integer multiply-adds
//! plus the f64 arithmetic, with no per-access layout lookups.

use crate::RuntimeError;
use alp_linalg::IMat;
use alp_loopir::{AccessKind, ArrayRef, LoopNest};
use alp_machine::ArrayLayout;

/// A reference lowered to one linear form over the iteration vector.
#[derive(Debug, Clone)]
pub struct LinRef {
    /// Coefficient per parallel loop index.
    coeffs: Vec<i64>,
    /// Constant term (absorbs the array base and extent lower bounds).
    constant: i64,
}

impl LinRef {
    /// Flat element id for iteration `i`.
    #[inline]
    pub fn eval(&self, i: &[i64]) -> usize {
        let mut e = self.constant;
        for (c, x) in self.coeffs.iter().zip(i) {
            e += c * x;
        }
        debug_assert!(e >= 0, "element id must be non-negative");
        e as usize
    }

    /// Element id (signed) at the row point `(j[..last], x)` — the last
    /// coordinate is taken from `x`, not from `j`.
    #[inline]
    fn row_start(&self, j: &[i64], x: i64) -> i64 {
        let last = self.coeffs.len() - 1;
        let mut e = self.constant + self.coeffs[last] * x;
        for (c, y) in self.coeffs[..last].iter().zip(j) {
            e += c * y;
        }
        e
    }

    /// Rewrite the linear form from original coordinates `ī` to
    /// transformed coordinates `j̄ = ī·U`: with `V = U⁻¹` and row-vector
    /// convention `ī = j̄·V`, the coefficient on `j_k` becomes
    /// `Σ_d V[k][d]·c_d`.  The constant term is unchanged.
    fn composed(&self, v: &IMat) -> Result<LinRef, RuntimeError> {
        let n = self.coeffs.len();
        debug_assert_eq!(v.rows(), n, "transform rank must match nest depth");
        let mut coeffs = Vec::with_capacity(n);
        for k in 0..n {
            let mut c = 0i128;
            for (d, &cd) in self.coeffs.iter().enumerate() {
                c += v[(k, d)] * cd as i128;
            }
            coeffs.push(i64::try_from(c).map_err(|_| RuntimeError::Overflow {
                array: String::from("<transformed kernel>"),
            })?);
        }
        Ok(LinRef {
            coeffs,
            constant: self.constant,
        })
    }
}

/// One statement, classified for parallel execution.
#[derive(Debug, Clone)]
pub enum CompiledStmt {
    /// `lhs = Σ sources` — a plain overwrite.  Legal doalls guarantee no
    /// other iteration touches `lhs`, so a relaxed store suffices.
    Assign {
        /// Destination element.
        lhs: LinRef,
        /// Source elements, summed.
        sources: Vec<LinRef>,
    },
    /// `lhs += Σ sources` — an Appendix-A accumulate.  The self-read is
    /// implicit in the atomic add, so `sources` excludes it.
    Accumulate {
        /// Destination element (atomically updated).
        lhs: LinRef,
        /// Source elements, summed into the delta.
        sources: Vec<LinRef>,
    },
}

/// A compiled nest body: the statements of one iteration.
#[derive(Debug, Clone)]
pub struct Kernel {
    stmts: Vec<CompiledStmt>,
}

impl Kernel {
    /// Lower every statement of `nest` against `layout`.
    ///
    /// Accumulate statements must contain exactly one accumulate-kind
    /// self-reference on the right-hand side (the canonical form the
    /// parser produces for `+=`); it becomes the implicit read of the
    /// atomic add.  An accumulate lhs with *no* self-read degenerates to
    /// a plain overwrite; more than one self-read is rejected.
    pub fn compile(nest: &LoopNest, layout: &ArrayLayout) -> Result<Kernel, RuntimeError> {
        let mut stmts = Vec::with_capacity(nest.body.len());
        for st in &nest.body {
            let lhs = lower_ref(&st.lhs, layout)?;
            if st.lhs.kind == AccessKind::Accumulate {
                let is_self = |r: &&ArrayRef| {
                    r.kind == AccessKind::Accumulate
                        && r.array == st.lhs.array
                        && r.subscripts == st.lhs.subscripts
                };
                let self_count = st.rhs.iter().filter(|r| is_self(r)).count();
                match self_count {
                    0 => {
                        // No old-value read: sequential semantics are a
                        // plain overwrite.
                        let sources = lower_refs(&st.rhs, layout)?;
                        stmts.push(CompiledStmt::Assign { lhs, sources });
                    }
                    1 => {
                        let others: Vec<&ArrayRef> =
                            st.rhs.iter().filter(|r| !is_self(r)).collect();
                        let sources = others
                            .iter()
                            .map(|r| lower_ref(r, layout))
                            .collect::<Result<_, _>>()?;
                        stmts.push(CompiledStmt::Accumulate { lhs, sources });
                    }
                    n => {
                        return Err(RuntimeError::UnsupportedStatement(format!(
                            "accumulate of `{}` reads its own old value {n} times; \
                             only one self-read is executable",
                            st.lhs.array
                        )));
                    }
                }
            } else {
                let sources = lower_refs(&st.rhs, layout)?;
                stmts.push(CompiledStmt::Assign { lhs, sources });
            }
        }
        Ok(Kernel { stmts })
    }

    /// Lower `nest` as [`compile`](Kernel::compile) does, then rewrite
    /// every linear form into transformed coordinates `j̄ = ī·U` by
    /// composing with `V = U⁻¹` (`ī = j̄·V`).  The resulting kernel is
    /// executed with *j-space* iteration vectors; element ids are
    /// identical to the original kernel's at the corresponding i-space
    /// point, so layouts, stores and touch tracking are unchanged.
    pub fn compile_transformed(
        nest: &LoopNest,
        layout: &ArrayLayout,
        v: &IMat,
    ) -> Result<Kernel, RuntimeError> {
        let base = Kernel::compile(nest, layout)?;
        let map = |r: &LinRef| r.composed(v);
        let stmts = base
            .stmts
            .iter()
            .map(|st| -> Result<CompiledStmt, RuntimeError> {
                Ok(match st {
                    CompiledStmt::Assign { lhs, sources } => CompiledStmt::Assign {
                        lhs: map(lhs)?,
                        sources: sources.iter().map(map).collect::<Result<_, _>>()?,
                    },
                    CompiledStmt::Accumulate { lhs, sources } => CompiledStmt::Accumulate {
                        lhs: map(lhs)?,
                        sources: sources.iter().map(map).collect::<Result<_, _>>()?,
                    },
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(Kernel { stmts })
    }

    /// The compiled statements, in source order.
    pub fn stmts(&self) -> &[CompiledStmt] {
        &self.stmts
    }

    /// Element ids touched by one iteration, write-likes flagged.
    /// (Used by touch tracking; mirrors the simulator's access order:
    /// rhs first, then the lhs write.)
    pub fn for_each_access(&self, i: &[i64], mut f: impl FnMut(usize, bool)) {
        for st in &self.stmts {
            match st {
                CompiledStmt::Assign { lhs, sources } => {
                    for s in sources {
                        f(s.eval(i), false);
                    }
                    f(lhs.eval(i), true);
                }
                CompiledStmt::Accumulate { lhs, sources } => {
                    for s in sources {
                        f(s.eval(i), false);
                    }
                    f(lhs.eval(i), true);
                }
            }
        }
    }

    /// Execute one iteration against the shared store.  Accumulates go
    /// through the atomic CAS loop — always sound.
    #[inline]
    pub fn execute(&self, i: &[i64], store: &crate::ArrayStore) {
        self.exec_inner(i, store, false);
    }

    /// Execute one iteration with *relaxed* accumulate stores (plain
    /// read-add-store, no CAS).  Sound only under a re-checked
    /// certificate proving exact coverage and cross-tile write
    /// disjointness: then exactly one thread ever updates each
    /// destination element, and the CAS buys nothing.
    #[inline]
    pub fn execute_relaxed(&self, i: &[i64], store: &crate::ArrayStore) {
        self.exec_inner(i, store, true);
    }

    /// Execute one contiguous row of iterations: the points
    /// `(j[0..last], x)` for `x` in `lo..=hi`.  Element ids advance by
    /// each reference's innermost-coordinate stride, so the inner loop
    /// is a pointer bump per reference plus the f64 arithmetic — no
    /// per-point dot products.
    #[inline]
    pub fn execute_row(&self, j: &[i64], lo: i64, hi: i64, store: &crate::ArrayStore) {
        self.exec_row_inner(j, lo, hi, store, false);
    }

    /// Row execution with relaxed accumulate stores; same soundness
    /// contract as [`execute_relaxed`](Kernel::execute_relaxed).
    #[inline]
    pub fn execute_row_relaxed(&self, j: &[i64], lo: i64, hi: i64, store: &crate::ArrayStore) {
        self.exec_row_inner(j, lo, hi, store, true);
    }

    fn exec_row_inner(
        &self,
        j: &[i64],
        lo: i64,
        hi: i64,
        store: &crate::ArrayStore,
        relaxed: bool,
    ) {
        if hi < lo {
            return;
        }
        let n = (hi - lo) as u64 + 1;
        for st in &self.stmts {
            let (lhs, sources, accumulate) = match st {
                CompiledStmt::Assign { lhs, sources } => (lhs, sources, false),
                CompiledStmt::Accumulate { lhs, sources } => (lhs, sources, true),
            };
            let last = lhs.coeffs.len() - 1;
            let lhs_step = lhs.coeffs[last];
            let mut lhs_e = lhs.row_start(j, lo);
            // (element, step) per source; small inline buffer covers
            // every realistic statement without allocating per row.
            let mut buf = [(0i64, 0i64); 8];
            let mut spill;
            let srcs: &mut [(i64, i64)] = if sources.len() <= buf.len() {
                for (slot, s) in buf.iter_mut().zip(sources) {
                    *slot = (s.row_start(j, lo), s.coeffs[last]);
                }
                &mut buf[..sources.len()]
            } else {
                spill = sources
                    .iter()
                    .map(|s| (s.row_start(j, lo), s.coeffs[last]))
                    .collect::<Vec<_>>();
                &mut spill
            };
            for _ in 0..n {
                let mut v = 0.0;
                for (e, step) in srcs.iter_mut() {
                    debug_assert!(*e >= 0, "element id must be non-negative");
                    v += store.get(*e as usize);
                    *e += *step;
                }
                debug_assert!(lhs_e >= 0, "element id must be non-negative");
                if accumulate {
                    if relaxed {
                        store.add_relaxed(lhs_e as usize, v);
                    } else {
                        store.fetch_add(lhs_e as usize, v);
                    }
                } else {
                    store.set(lhs_e as usize, v);
                }
                lhs_e += lhs_step;
            }
        }
    }

    #[inline(always)]
    fn exec_inner(&self, i: &[i64], store: &crate::ArrayStore, relaxed: bool) {
        for st in &self.stmts {
            match st {
                CompiledStmt::Assign { lhs, sources } => {
                    let mut v = 0.0;
                    for s in sources {
                        v += store.get(s.eval(i));
                    }
                    store.set(lhs.eval(i), v);
                }
                CompiledStmt::Accumulate { lhs, sources } => {
                    let mut delta = 0.0;
                    for s in sources {
                        delta += store.get(s.eval(i));
                    }
                    if relaxed {
                        store.add_relaxed(lhs.eval(i), delta);
                    } else {
                        store.fetch_add(lhs.eval(i), delta);
                    }
                }
            }
        }
    }
}

fn lower_refs(refs: &[ArrayRef], layout: &ArrayLayout) -> Result<Vec<LinRef>, RuntimeError> {
    refs.iter().map(|r| lower_ref(r, layout)).collect()
}

/// Fold a reference's subscripts through the layout's strides:
/// `element(ī) = base + Σ_d stride_d · (sub_d(ī) − lo_d)`.
fn lower_ref(r: &ArrayRef, layout: &ArrayLayout) -> Result<LinRef, RuntimeError> {
    let id = layout
        .array_id(&r.array)
        .ok_or_else(|| RuntimeError::UnknownArray(r.array.clone()))?;
    let strides = layout.strides(id);
    let extents = layout.extents(id);
    let depth = r.subscripts.first().map_or(0, |s| s.coeffs.len());

    let mut coeffs = vec![0i128; depth];
    let mut constant = layout.base(id) as i128;
    for (d, sub) in r.subscripts.iter().enumerate() {
        let stride = strides[d] as i128;
        for (k, &c) in sub.coeffs.iter().enumerate() {
            coeffs[k] += stride * c;
        }
        constant += stride * (sub.constant - extents[d].0);
    }

    let narrow = |v: i128| -> Result<i64, RuntimeError> {
        i64::try_from(v).map_err(|_| RuntimeError::Overflow {
            array: r.array.clone(),
        })
    };
    Ok(LinRef {
        coeffs: coeffs.into_iter().map(narrow).collect::<Result<_, _>>()?,
        constant: narrow(constant)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayStore;
    use alp_loopir::parse;

    #[test]
    fn linref_matches_layout_line() {
        // Every compiled element id must equal the interpreted
        // layout.line(eval(i)) on every iteration.
        let nest = parse(
            "doall (i, 2, 5) { doall (j, -1, 3) {
               A[2*i, i+2*j-1] = B[j+6, i] + A[2*i, i+2*j-1];
             } }",
        )
        .unwrap();
        let layout = ArrayLayout::from_nest(&nest);
        let refs = nest.all_refs();
        for r in &refs {
            let lin = lower_ref(r, &layout).unwrap();
            let id = layout.array_id(&r.array).unwrap();
            for pt in nest.iteration_points() {
                let i: Vec<i64> = pt.0.iter().map(|&x| x as i64).collect();
                assert_eq!(lin.eval(&i) as u64, layout.line(id, &r.eval(&pt)));
            }
        }
    }

    #[test]
    fn accumulate_requires_single_self_read() {
        let nest = parse("doall (i, 0, 3) { l$C[i] = l$C[i] + l$C[i] + A[i]; }").unwrap();
        let layout = ArrayLayout::from_nest(&nest);
        let err = Kernel::compile(&nest, &layout).unwrap_err();
        assert!(matches!(err, RuntimeError::UnsupportedStatement(_)));
    }

    #[test]
    fn accumulate_without_self_read_is_overwrite() {
        let nest = parse("doall (i, 0, 3) { l$C[i] = A[i]; }").unwrap();
        let layout = ArrayLayout::from_nest(&nest);
        let kernel = Kernel::compile(&nest, &layout).unwrap();
        assert!(matches!(kernel.stmts()[0], CompiledStmt::Assign { .. }));
        let store = ArrayStore::zeroed(layout.total_lines());
        let a0 = layout.array_id("A").unwrap();
        store.set(layout.line(a0, &alp_linalg::IVec::new(&[2])) as usize, 9.0);
        kernel.execute(&[2], &store);
        kernel.execute(&[2], &store); // overwrite, not accumulate
        let c0 = layout.array_id("C").unwrap();
        assert_eq!(
            store.get(layout.line(c0, &alp_linalg::IVec::new(&[2])) as usize),
            9.0
        );
    }
}
