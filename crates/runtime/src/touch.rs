//! Distinct-cache-line counting for executed tiles.
//!
//! Small address spaces get an exact bitset; beyond
//! [`EXACT_LIMIT_BITS`] lines a fixed-size Bloom filter takes over and
//! the count becomes the standard occupancy estimate
//! `−(m/k)·ln(1 − X/m)`.  Either way the cost per access is a couple of
//! shifts and masks, cheap enough to leave on during measured runs.
//!
//! Counts are in *cache lines*: element ids are divided by the line
//! size before insertion, so with `line_size = 1` they are directly
//! comparable to the cost model's per-tile element footprints (Eq. 2)
//! and to the simulator's cold misses.

/// Largest line-id space tracked exactly (2^24 lines = 2 MiB of bits).
pub const EXACT_LIMIT_BITS: u64 = 1 << 24;

/// Bloom filter size (bits) used beyond the exact limit; exposed to the
/// executor's pre-flight memory estimate.
pub(crate) const BLOOM_BITS: usize = 1 << 20;
const BLOOM_HASHES: u32 = 2;

/// A set of touched line ids.
#[derive(Debug, Clone)]
pub struct TouchSet {
    words: Vec<u64>,
    exact: bool,
    /// Exact mode: number of distinct lines inserted.
    count: u64,
    line_size: u64,
}

impl TouchSet {
    /// A set able to hold line ids below `total_lines / line_size`.
    pub fn new(total_lines: u64, line_size: u64) -> Self {
        let line_size = line_size.max(1);
        let lines = total_lines.div_ceil(line_size);
        let exact = lines <= EXACT_LIMIT_BITS;
        let bits = if exact {
            // Unreachable expect: `lines <= EXACT_LIMIT_BITS = 2^24`
            // here, far below usize::MAX on every supported target.
            usize::try_from(lines)
                .expect("line count exceeds usize")
                .max(1)
        } else {
            BLOOM_BITS
        };
        TouchSet {
            words: vec![0u64; bits.div_ceil(64)],
            exact,
            count: 0,
            line_size,
        }
    }

    /// True when counts are exact rather than Bloom estimates.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Record a touch of element id `element`.
    #[inline]
    pub fn insert(&mut self, element: usize) {
        let line = element as u64 / self.line_size;
        if self.exact {
            let (w, b) = ((line / 64) as usize, line % 64);
            let mask = 1u64 << b;
            if self.words[w] & mask == 0 {
                self.words[w] |= mask;
                self.count += 1;
            }
        } else {
            let mut h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..BLOOM_HASHES {
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                let bit = (h as usize) & (BLOOM_BITS - 1);
                self.words[bit / 64] |= 1u64 << (bit % 64);
            }
        }
    }

    /// Merge another set into this one (same configuration).
    pub fn merge(&mut self, other: &TouchSet) {
        debug_assert_eq!(self.exact, other.exact);
        debug_assert_eq!(self.words.len(), other.words.len());
        if self.exact {
            let mut count = 0u64;
            for (w, &o) in self.words.iter_mut().zip(&other.words) {
                *w |= o;
                count += w.count_ones() as u64;
            }
            self.count = count;
        } else {
            for (w, &o) in self.words.iter_mut().zip(&other.words) {
                *w |= o;
            }
        }
    }

    /// Number of distinct lines touched (exact or Bloom-estimated).
    pub fn count(&self) -> u64 {
        if self.exact {
            self.count
        } else {
            let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
            let m = BLOOM_BITS as f64;
            let x = set as f64;
            if x >= m {
                return u64::MAX; // saturated filter: no estimate
            }
            let est = -(m / BLOOM_HASHES as f64) * (1.0 - x / m).ln();
            est.round() as u64
        }
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_distinct() {
        let mut t = TouchSet::new(1000, 1);
        assert!(t.is_exact());
        for e in [3usize, 7, 3, 999, 7, 0] {
            t.insert(e);
        }
        assert_eq!(t.count(), 4);
        t.clear();
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn line_size_coarsens() {
        let mut t = TouchSet::new(1000, 4);
        for e in 0..8usize {
            t.insert(e); // elements 0..8 span lines 0 and 1
        }
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = TouchSet::new(256, 1);
        let mut b = TouchSet::new(256, 1);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn bloom_estimate_close() {
        let mut t = TouchSet::new(u64::from(u32::MAX), 1);
        assert!(!t.is_exact());
        let n = 50_000usize;
        for e in 0..n {
            t.insert(e * 97 + 13);
        }
        let est = t.count() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} vs {n} (err {err:.3})");
    }
}
