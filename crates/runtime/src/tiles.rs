//! Tiles for the executor.
//!
//! The rectangular enumerator lives in [`alp_plan::tiles`] — the single
//! implementation shared with `alp-codegen`'s `assign_rect` and the
//! machine simulator, so tile `t` here encloses precisely the iterations
//! every other layer gives processor `t`.  This module re-exports it and
//! adds the explicit-assignment conversion the executor also accepts.

use crate::RuntimeError;

pub use alp_plan::{rect_tiles, IterBox};

/// Explicit per-processor iteration lists, converted from a codegen
/// [`Assignment`](alp_codegen::Assignment).
pub fn explicit_tiles(
    assignment: &[Vec<alp_linalg::IVec>],
) -> Result<Vec<Vec<Vec<i64>>>, RuntimeError> {
    assignment
        .iter()
        .map(|pts| {
            pts.iter()
                .map(|p| {
                    p.0.iter()
                        .map(|&x| {
                            i64::try_from(x).map_err(|_| {
                                RuntimeError::BadGrid(format!("iteration coord {x} overflows i64"))
                            })
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_codegen::assign_rect;
    use alp_linalg::IVec;
    use alp_loopir::parse;

    #[test]
    fn tiles_mirror_assign_rect() {
        // 7×5 space on a 2×3 grid: boundary tiles shrink, numbering
        // must match assign_rect's processor numbering exactly.  Both
        // sides now derive from alp_plan::rect_tiles, so this pins the
        // conversion paths, not two parallel implementations.
        let nest = parse("doall (i, 0, 6) { doall (j, 10, 14) { A[i, j] = A[i, j]; } }").unwrap();
        let grid = [2i128, 3];
        let assignment = assign_rect(&nest, &grid);
        let (tiles, chunks) = rect_tiles(&nest, &grid).unwrap();
        assert_eq!(chunks, vec![4, 2]);
        assert_eq!(tiles.len(), assignment.len());
        for (tile, pts) in tiles.iter().zip(&assignment) {
            let mut mine: Vec<IVec> = Vec::new();
            tile.for_each_point(|i| {
                mine.push(IVec(i.iter().map(|&x| x as i128).collect()));
            });
            assert_eq!(&mine, pts);
        }
    }

    #[test]
    fn empty_boundary_tiles_preserved() {
        // 3 iterations on 4 processors: chunk 1, tile 3 is empty.
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        let (tiles, _) = rect_tiles(&nest, &[4]).unwrap();
        assert_eq!(tiles.len(), 4);
        assert!(tiles[3].is_empty());
        let total: u64 = tiles.iter().map(IterBox::volume).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn grid_dim_mismatch_rejected() {
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        assert!(rect_tiles(&nest, &[2, 2]).is_err());
        assert!(rect_tiles(&nest, &[0]).is_err());
    }
}
