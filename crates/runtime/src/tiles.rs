//! Rectangular tiles of the parallel iteration space.
//!
//! [`rect_tiles`] mirrors `alp_codegen::assign_rect` exactly: the same
//! ceiling-division chunking, the same row-major tile→processor
//! numbering, and the same clamping at the upper boundary — so tile `t`
//! here encloses precisely the iterations `assign_rect` gives processor
//! `t`.  Empty boundary tiles are preserved to keep the numbering
//! aligned.

use crate::RuntimeError;
use alp_loopir::LoopNest;

/// An axis-aligned box of iterations, inclusive on both ends per
/// dimension.  Empty when any `lo > hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterBox {
    /// Inclusive lower corner.
    pub lo: Vec<i64>,
    /// Inclusive upper corner.
    pub hi: Vec<i64>,
}

impl IterBox {
    /// Number of iterations in the box (0 when empty).
    pub fn volume(&self) -> u64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| if h < l { 0 } else { (h - l + 1) as u64 })
            .product()
    }

    /// True when the box contains no iterations.
    pub fn is_empty(&self) -> bool {
        self.volume() == 0
    }

    /// Visit every iteration in row-major order (outermost dimension
    /// slowest), reusing one scratch vector.
    pub fn for_each_point(&self, mut f: impl FnMut(&[i64])) {
        if self.is_empty() {
            return;
        }
        let l = self.lo.len();
        let mut i = self.lo.clone();
        loop {
            f(&i);
            let mut k = l;
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                i[k] += 1;
                if i[k] <= self.hi[k] {
                    break;
                }
                i[k] = self.lo[k];
            }
        }
    }
}

/// Split the nest's parallel iteration space into `Π grid` rectangular
/// tiles, one per virtual processor, row-major over the grid.
///
/// Returns the tiles and the per-dimension chunk sizes (the tile
/// extents λ of interior tiles, in the paper's terms).
pub fn rect_tiles(
    nest: &LoopNest,
    grid: &[i128],
) -> Result<(Vec<IterBox>, Vec<i128>), RuntimeError> {
    if grid.len() != nest.depth() {
        return Err(RuntimeError::BadGrid(format!(
            "grid has {} dims, nest has {} parallel loops",
            grid.len(),
            nest.depth()
        )));
    }
    if grid.iter().any(|&g| g <= 0) {
        return Err(RuntimeError::BadGrid(format!(
            "grid extents must be positive, got {grid:?}"
        )));
    }
    let chunks: Vec<i128> = nest
        .loops
        .iter()
        .zip(grid)
        .map(|(l, &g)| (l.trip_count() + g - 1) / g)
        .collect();

    let tiles_total: i128 = grid.iter().product();
    let tiles_total = usize::try_from(tiles_total)
        .map_err(|_| RuntimeError::BadGrid(format!("grid too large: {grid:?}")))?;

    let to_i64 = |v: i128, what: &str| -> Result<i64, RuntimeError> {
        i64::try_from(v).map_err(|_| RuntimeError::BadGrid(format!("{what} {v} overflows i64")))
    };

    let mut tiles = Vec::with_capacity(tiles_total);
    let dims = grid.len();
    let mut coord = vec![0i128; dims];
    for _ in 0..tiles_total {
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for (k, l) in nest.loops.iter().enumerate() {
            let tile_lo = l.lower + coord[k] * chunks[k];
            let tile_hi = (tile_lo + chunks[k] - 1).min(l.upper);
            lo.push(to_i64(tile_lo, "tile bound")?);
            hi.push(to_i64(tile_hi, "tile bound")?);
        }
        tiles.push(IterBox { lo, hi });
        // Row-major increment over the grid (last dim fastest).
        let mut k = dims;
        while k > 0 {
            k -= 1;
            coord[k] += 1;
            if coord[k] < grid[k] {
                break;
            }
            coord[k] = 0;
        }
    }
    Ok((tiles, chunks))
}

/// Explicit per-processor iteration lists, converted from a codegen
/// [`Assignment`](alp_codegen::Assignment).
pub fn explicit_tiles(
    assignment: &[Vec<alp_linalg::IVec>],
) -> Result<Vec<Vec<Vec<i64>>>, RuntimeError> {
    assignment
        .iter()
        .map(|pts| {
            pts.iter()
                .map(|p| {
                    p.0.iter()
                        .map(|&x| {
                            i64::try_from(x).map_err(|_| {
                                RuntimeError::BadGrid(format!("iteration coord {x} overflows i64"))
                            })
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_codegen::assign_rect;
    use alp_linalg::IVec;
    use alp_loopir::parse;

    #[test]
    fn tiles_mirror_assign_rect() {
        // 7×5 space on a 2×3 grid: boundary tiles shrink, numbering
        // must match assign_rect's processor numbering exactly.
        let nest = parse("doall (i, 0, 6) { doall (j, 10, 14) { A[i, j] = A[i, j]; } }").unwrap();
        let grid = [2i128, 3];
        let assignment = assign_rect(&nest, &grid);
        let (tiles, chunks) = rect_tiles(&nest, &grid).unwrap();
        assert_eq!(chunks, vec![4, 2]);
        assert_eq!(tiles.len(), assignment.len());
        for (tile, pts) in tiles.iter().zip(&assignment) {
            let mut mine: Vec<IVec> = Vec::new();
            tile.for_each_point(|i| {
                mine.push(IVec(i.iter().map(|&x| x as i128).collect()));
            });
            assert_eq!(&mine, pts);
        }
    }

    #[test]
    fn empty_boundary_tiles_preserved() {
        // 3 iterations on 4 processors: chunk 1, tile 3 is empty.
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        let (tiles, _) = rect_tiles(&nest, &[4]).unwrap();
        assert_eq!(tiles.len(), 4);
        assert!(tiles[3].is_empty());
        let total: u64 = tiles.iter().map(IterBox::volume).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn grid_dim_mismatch_rejected() {
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        assert!(rect_tiles(&nest, &[2, 2]).is_err());
        assert!(rect_tiles(&nest, &[0]).is_err());
    }
}
