//! A native multithreaded executor for partitioned doall nests.
//!
//! Where `alp-machine` *simulates* the memory system of a partitioned
//! loop nest, this crate actually *runs* the nest: real f64 arrays, one
//! OS thread per (group of) tile(s), atomic accumulates for `l$`
//! statements, and a barrier at the end of each outer sequential
//! repetition.  Three things come out of a run:
//!
//! * **Results** — the array contents, checked bit-for-bit against an
//!   independently interpreted sequential reference
//!   ([`Executor::verify`]).
//! * **Metrics** — per-thread/per-tile iteration counts, wall time, and
//!   distinct-cache-line touch counts ([`RunReport`]).
//! * **Validation** — the touch counts are directly comparable to the
//!   cost model's per-tile cumulative footprints (Theorem 4) and the
//!   simulator's per-processor cold misses
//!   ([`RunReport::compare_with_model`],
//!   [`RunReport::compare_with_traffic`]).
//!
//! ```
//! use alp_runtime::{ExecOptions, Executor};
//!
//! let nest = alp_loopir::parse(
//!     "doall (i, 0, 31) { doall (j, 0, 31) { A[i, j] = B[i, j] + B[i+1, j]; } }",
//! ).unwrap();
//! let exec = Executor::from_grid(&nest, &[2, 2]).unwrap();
//! let outcome = exec.verify(42, &ExecOptions::default()).unwrap();
//! assert!(outcome.matches_reference);
//! assert_eq!(outcome.report.total_iterations, 32 * 32);
//! ```
//!
//! The executor is hardened — panics are contained per tile, runs can
//! carry deadlines, cancellation tokens, memory budgets, and bounded
//! retry — see the failure model in [`exec`](ExecOptions)'s module docs
//! and the `sync` primitives ([`CancellableBarrier`], [`CancelToken`]).

mod exec;
mod kernel;
mod report;
mod store;
mod sync;
mod tiles;
mod touch;

pub use exec::{
    syntactic_retry_safe, ExecOptions, ExecOutcome, Executor, RetryPolicy, POLL_INTERVAL,
};
pub use kernel::{CompiledStmt, Kernel, LinRef};
pub use report::{ModelComparison, RunReport, Schedule, ThreadMetrics, TileMetrics};
pub use store::ArrayStore;
pub use sync::{BarrierCancelled, CancelToken, CancellableBarrier};
pub use tiles::{rect_tiles, IterBox};
pub use touch::TouchSet;

#[cfg(feature = "chaos")]
pub use exec::FaultInjector;

/// Why a nest could not be compiled for native execution — or why a
/// run was stopped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A reference names an array the layout does not know.
    UnknownArray(String),
    /// A statement has no executable lowering (e.g. an accumulate
    /// reading its own old value more than once).
    UnsupportedStatement(String),
    /// Array addressing does not fit native integer arithmetic.
    Overflow {
        /// The array whose address computation overflowed.
        array: String,
    },
    /// The processor grid does not fit the nest.
    BadGrid(String),
    /// A saved plan could not be turned into an executor (corrupt file,
    /// fingerprint mismatch, unsupported schema version).
    BadPlan(alp_plan::PlanError),
    /// A tile's kernel panicked and the panic was contained; all worker
    /// threads were joined and the store is in an unspecified partial
    /// state.  `tile == usize::MAX` marks the rare case of a worker
    /// failing outside any tile.
    TileFailed {
        /// The tile (virtual processor) whose execution failed.
        tile: usize,
        /// The outer sequential repetition during which it failed.
        rep: u64,
        /// The stringified panic payload.
        payload: String,
    },
    /// The run's wall-clock deadline ([`ExecOptions::deadline`]) passed
    /// before the run finished; workers were cancelled cooperatively.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline: std::time::Duration,
    },
    /// The caller's [`CancelToken`] ([`ExecOptions::cancel`]) fired;
    /// workers wound down cooperatively.
    Cancelled,
    /// The run's estimated allocations exceed the configured memory
    /// budget ([`ExecOptions::memory_budget`]); nothing was allocated.
    ResourceExceeded {
        /// Bytes the run would need.
        required: u64,
        /// The configured budget in bytes.
        budget: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            RuntimeError::UnsupportedStatement(m) => write!(f, "unsupported statement: {m}"),
            RuntimeError::Overflow { array } => {
                write!(f, "address computation for `{array}` overflows i64")
            }
            RuntimeError::BadGrid(m) => write!(f, "bad processor grid: {m}"),
            RuntimeError::BadPlan(e) => write!(f, "cannot execute plan: {e}"),
            RuntimeError::TileFailed { tile, rep, payload } if *tile == usize::MAX => {
                write!(f, "worker failed during repetition {rep}: {payload}")
            }
            RuntimeError::TileFailed { tile, rep, payload } => {
                write!(f, "tile {tile} failed during repetition {rep}: {payload}")
            }
            RuntimeError::DeadlineExceeded { deadline } => {
                write!(f, "run exceeded its {deadline:?} deadline")
            }
            RuntimeError::Cancelled => write!(f, "run cancelled by caller"),
            RuntimeError::ResourceExceeded { required, budget } => write!(
                f,
                "run needs {required} bytes of array and touch-tracking storage, \
                 over the {budget}-byte budget"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::BadPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alp_plan::PlanError> for RuntimeError {
    fn from(e: alp_plan::PlanError) -> Self {
        match e {
            // Grid-shape problems keep their established variant so
            // callers matching on BadGrid see no change.
            alp_plan::PlanError::BadGrid(m) => RuntimeError::BadGrid(m),
            e => RuntimeError::BadPlan(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn example2() -> alp_loopir::LoopNest {
        parse(
            "doall (i, 0, 15) { doall (j, 0, 15) {
               A[i, j] = B[i+j, i-j-1] + B[i+j+4, i-j+3];
             } }",
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_reference_static() {
        let exec = Executor::from_grid(&example2(), &[2, 2]).unwrap();
        let outcome = exec.verify(1, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
        assert_eq!(outcome.report.total_iterations, 256);
        assert_eq!(outcome.report.threads, 4);
    }

    #[test]
    fn parallel_matches_reference_dynamic() {
        let opts = ExecOptions {
            threads: 3,
            schedule: Schedule::Dynamic,
            ..ExecOptions::default()
        };
        let exec = Executor::from_grid(&example2(), &[4, 2]).unwrap();
        let outcome = exec.verify(2, &opts).unwrap();
        assert!(outcome.matches_reference);
        assert_eq!(outcome.report.threads, 3);
        assert_eq!(outcome.report.tiles, 8);
        assert_eq!(outcome.report.total_iterations, 256);
    }

    #[test]
    fn accumulate_matmul_matches_reference() {
        // Fig. 11 matmul: k-dimension split forces concurrent atomic
        // accumulates into the same C elements.
        let nest = parse(
            "doall (i, 0, 7) { doall (j, 0, 7) { doall (k, 0, 7) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        let exec = Executor::from_grid(&nest, &[1, 1, 8]).unwrap();
        let outcome = exec.verify(3, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
    }

    #[test]
    fn doseq_repeats_with_barrier() {
        // Fig. 9 shape: each repetition re-reads what the previous one
        // wrote, so reps must be barrier-separated to stay correct.
        let nest = parse(
            "doseq (s, 0, 3) { doall (i, 0, 63) {
               l$A[0] = l$A[0] + B[i];
             } }",
        )
        .unwrap();
        let exec = Executor::from_grid(&nest, &[8]).unwrap();
        let outcome = exec.verify(4, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
        assert_eq!(outcome.report.repetitions, 4);
        assert_eq!(outcome.report.total_iterations, 4 * 64);
    }

    #[test]
    fn touch_counts_match_footprint() {
        // 1 processor, unit lines: distinct touches == whole-nest
        // cumulative footprint (A 10 + B 11 = 21, as in the simulator's
        // cold-miss test).
        let nest = parse("doall (i, 0, 9) { A[i] = B[i] + B[i+1]; }").unwrap();
        let exec = Executor::from_grid(&nest, &[1]).unwrap();
        let outcome = exec.verify(5, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
        assert!(outcome.report.touches_exact);
        assert_eq!(outcome.report.max_tile_footprint(), Some(21));
    }

    #[test]
    fn fewer_threads_than_tiles() {
        let exec = Executor::from_grid(&example2(), &[4, 4]).unwrap();
        let opts = ExecOptions {
            threads: 2,
            ..ExecOptions::default()
        };
        let outcome = exec.verify(6, &opts).unwrap();
        assert!(outcome.matches_reference);
        assert_eq!(outcome.report.threads, 2);
        assert_eq!(outcome.report.tiles, 16);
        let tiles_run: usize = outcome.report.per_thread.iter().map(|m| m.tiles_run).sum();
        assert_eq!(tiles_run, 16);
    }

    #[test]
    fn zero_iteration_tiles_return_empty_report() {
        // The parser rejects zero-trip source loops, but an explicit
        // assignment can still hand the executor tiles with no work:
        // the run must return an empty report, not spawn threads
        // against a 0-party barrier or divide by zero.
        let nest = parse("doall (i, 0, 3) { A[i] = A[i]; }").unwrap();
        let assignment: Vec<Vec<alp_linalg::IVec>> = vec![Vec::new(), Vec::new()];
        let exec = Executor::from_assignment(&nest, &assignment).unwrap();
        assert_eq!(exec.tile_count(), 2);
        let report = exec
            .run(&exec.seeded_store(0), &ExecOptions::default())
            .unwrap();
        assert_eq!(report.threads, 0);
        assert_eq!(report.total_iterations, 0);
        assert!(report.per_thread.is_empty());
        assert!(report.per_tile.is_empty());
    }

    #[test]
    fn empty_explicit_assignment_returns_empty_report() {
        let nest = parse("doall (i, 0, 3) { A[i] = A[i]; }").unwrap();
        let assignment: Vec<Vec<alp_linalg::IVec>> = Vec::new();
        let exec = Executor::from_assignment(&nest, &assignment).unwrap();
        let report = exec
            .run(&exec.seeded_store(0), &ExecOptions::default())
            .unwrap();
        assert_eq!(report.threads, 0);
        assert_eq!(report.total_iterations, 0);
    }

    #[test]
    fn pre_cancelled_token_stops_the_run() {
        let token = CancelToken::new();
        token.cancel();
        let opts = ExecOptions {
            cancel: Some(token),
            ..ExecOptions::default()
        };
        let exec = Executor::from_grid(&example2(), &[2, 2]).unwrap();
        let err = exec.run(&exec.seeded_store(0), &opts).unwrap_err();
        assert_eq!(err, RuntimeError::Cancelled);
    }

    #[test]
    fn elapsed_deadline_stops_the_run() {
        // A zero deadline is already past when the first poll runs; the
        // run must come back (all threads joined) with the structured
        // error instead of executing to completion.
        let deadline = std::time::Duration::ZERO;
        let opts = ExecOptions {
            deadline: Some(deadline),
            ..ExecOptions::default()
        };
        let exec = Executor::from_grid(&example2(), &[2, 2]).unwrap();
        let err = exec.run(&exec.seeded_store(0), &opts).unwrap_err();
        assert_eq!(err, RuntimeError::DeadlineExceeded { deadline });
    }

    #[test]
    fn memory_budget_refuses_oversized_runs() {
        let exec = Executor::from_grid(&example2(), &[2, 2]).unwrap();
        let enough = exec.estimate_run_bytes(&ExecOptions::default());
        // At the estimate the run is admitted; one byte under, refused.
        let opts = ExecOptions {
            memory_budget: Some(enough),
            ..ExecOptions::default()
        };
        assert!(exec.verify(9, &opts).unwrap().matches_reference);
        let opts = ExecOptions {
            memory_budget: Some(enough - 1),
            ..ExecOptions::default()
        };
        let err = exec.verify(9, &opts).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::ResourceExceeded {
                required: enough,
                budget: enough - 1,
            }
        );
    }

    #[test]
    fn run_sequential_matches_reference_path() {
        let exec = Executor::from_grid(&example2(), &[2, 2]).unwrap();
        let store = exec.seeded_store(11);
        let init = store.snapshot();
        assert_eq!(exec.run_sequential(11), exec.run_reference(&init));
    }

    #[test]
    fn retry_safety_classification() {
        // Plain assigns reading a disjoint array: safe to re-run.
        let safe = parse("doall (i, 0, 3) { A[i] = B[i] + B[i+1]; }").unwrap();
        assert!(Executor::from_grid(&safe, &[2]).unwrap().retry_safe());
        // Accumulate: a partial attempt already folded deltas in.
        let acc = parse("doall (i, 0, 3) { l$S[0] = l$S[0] + B[i]; }").unwrap();
        assert!(!Executor::from_grid(&acc, &[2]).unwrap().retry_safe());
        // Read-after-write: a re-run could observe its own output.
        let raw = parse("doall (i, 0, 3) { A[i] = A[i] + B[i]; }").unwrap();
        assert!(!Executor::from_grid(&raw, &[2]).unwrap().retry_safe());
    }

    #[test]
    fn certified_relaxed_stores_match_atomic_reference() {
        // ij-block matmul: each tile owns its C elements, so a
        // certificate's coverage + write-disjointness verdicts unlock
        // plain read-add-store accumulates.  Must stay bitwise equal to
        // the sequential reference (and hence to the CAS path).
        let nest = parse(
            "doall (i, 0, 7) { doall (j, 0, 7) { doall (k, 0, 7) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        let mut exec = Executor::from_grid(&nest, &[4, 2, 1]).unwrap();
        assert!(!exec.uses_relaxed_stores());
        exec.apply_certificate(true, false);
        assert!(exec.uses_relaxed_stores());
        let outcome = exec.verify(11, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
    }

    #[test]
    fn retry_policy_is_the_single_decision_point() {
        // Syntactic: only first-repetition tiles of accepted nests.
        let safe = parse("doall (i, 0, 3) { A[i] = B[i]; }").unwrap();
        let exec = Executor::from_grid(&safe, &[2]).unwrap();
        assert_eq!(exec.retry_policy(), RetryPolicy::Syntactic { safe: true });
        assert!(exec.retry_policy().eligible(0));
        assert!(!exec.retry_policy().eligible(1));
        // Certified idempotence holds at any repetition; a refuted
        // verdict blocks retry entirely.
        let mut exec = Executor::from_grid(&safe, &[2]).unwrap();
        exec.apply_certificate(true, true);
        assert!(exec.retry_policy().eligible(0));
        assert!(exec.retry_policy().eligible(3));
        exec.apply_certificate(true, false);
        assert!(!exec.retry_policy().eligible(0));
        assert!(!exec.retry_safe());
    }

    #[test]
    fn explicit_assignment_path() {
        let nest = example2();
        let assignment = vec![
            nest.iteration_points()[..100].to_vec(),
            nest.iteration_points()[100..].to_vec(),
        ];
        let exec = Executor::from_assignment(&nest, &assignment).unwrap();
        let outcome = exec.verify(7, &ExecOptions::default()).unwrap();
        assert!(outcome.matches_reference);
        assert_eq!(outcome.report.total_iterations, 256);
    }
}
