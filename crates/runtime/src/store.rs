//! Shared array storage for parallel execution.
//!
//! All arrays of a nest live in one flat `Vec<AtomicU64>` indexed by the
//! element ids of [`alp_machine::ArrayLayout`], each cell holding an
//! `f64` bit pattern.  Plain assigns use relaxed loads/stores (legal
//! doalls never race on them); accumulates use a compare-exchange loop,
//! the runtime analogue of the paper's fine-grain `l$` synchronization
//! (Appendix A).

use std::sync::atomic::{AtomicU64, Ordering};

/// A flat, atomically accessible f64 heap covering every array element
/// of a nest.
#[derive(Debug)]
pub struct ArrayStore {
    cells: Vec<AtomicU64>,
}

/// The deterministic seed value for element `k` under `seed`: a
/// SplitMix64-style mix of (seed, index), reduced to 0..=255.
///
/// Integer values keep every sum a nest can produce exact in f64 (far
/// below 2^53), so accumulate results are independent of the order
/// threads interleave their additions — which is what makes bitwise
/// parallel-vs-sequential comparison meaningful.  Shared by
/// [`ArrayStore::seeded`] and the executor's sequential fallback so
/// both paths start from identical data.
pub(crate) fn seeded_value(seed: u64, k: u64) -> f64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) & 0xFF) as f64
}

/// Seeded initial data as a plain `Vec<f64>` (no atomics), for
/// sequential execution paths that never share the array.
pub(crate) fn seeded_values(len: u64, seed: u64) -> Vec<f64> {
    (0..len).map(|k| seeded_value(seed, k)).collect()
}

impl ArrayStore {
    /// A store of `len` elements, all 0.0.
    ///
    /// # Panics
    /// Panics if `len` exceeds `usize::MAX` (only reachable on targets
    /// where `usize` is narrower than `u64`; allocation would fail far
    /// earlier on 64-bit targets).
    pub fn zeroed(len: u64) -> Self {
        let len = usize::try_from(len).expect("store size exceeds usize");
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, || AtomicU64::new(0f64.to_bits()));
        ArrayStore { cells }
    }

    /// A store seeded with small, deterministic, *integer-valued* f64s
    /// (integers are exact in `f64`, so summation order cannot change
    /// results and parallel runs compare bitwise against the sequential
    /// reference).
    pub fn seeded(len: u64, seed: u64) -> Self {
        let store = ArrayStore::zeroed(len);
        for (k, cell) in store.cells.iter().enumerate() {
            cell.store(seeded_value(seed, k as u64).to_bits(), Ordering::Relaxed);
        }
        store
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the store holds no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, idx: usize) -> f64 {
        f64::from_bits(self.cells[idx].load(Ordering::Relaxed))
    }

    /// Overwrite one element.
    #[inline]
    pub fn set(&self, idx: usize, v: f64) {
        self.cells[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `delta` to one element (CAS loop).
    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: f64) {
        let cell = &self.cells[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add `delta` to one element with a plain read-modify-write (no
    /// CAS).  Only sound when a certificate proves no other thread can
    /// touch this element concurrently (coverage + cross-tile write
    /// disjointness); the executor's relaxed fast path is gated on
    /// exactly that proof.
    #[inline]
    pub fn add_relaxed(&self, idx: usize, delta: f64) {
        let cell = &self.cells[idx];
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        cell.store((cur + delta).to_bits(), Ordering::Relaxed);
    }

    /// Copy the current contents out as plain f64s.
    pub fn snapshot(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Overwrite the whole store from a plain f64 slice.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the store length.
    pub fn load_from(&self, values: &[f64]) {
        assert_eq!(values.len(), self.cells.len(), "length mismatch");
        for (cell, &v) in self.cells.iter().zip(values) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic_and_integer_valued() {
        let a = ArrayStore::seeded(64, 7);
        let b = ArrayStore::seeded(64, 7);
        let c = ArrayStore::seeded(64, 8);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_ne!(a.snapshot(), c.snapshot());
        for v in a.snapshot() {
            assert_eq!(v, v.trunc());
            assert!((0.0..=255.0).contains(&v));
        }
    }

    #[test]
    fn seeded_values_matches_seeded_store() {
        // The sequential fallback and the parallel store must start
        // from identical data.
        let store = ArrayStore::seeded(97, 41);
        assert_eq!(store.snapshot(), seeded_values(97, 41));
    }

    #[test]
    fn fetch_add_accumulates() {
        let s = ArrayStore::zeroed(4);
        s.fetch_add(2, 1.5);
        s.fetch_add(2, 2.5);
        assert_eq!(s.get(2), 4.0);
        assert_eq!(s.get(0), 0.0);
    }

    #[test]
    fn concurrent_fetch_add_loses_nothing() {
        let s = ArrayStore::zeroed(1);
        let threads = 8;
        let per_thread = 10_000;
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    for _ in 0..per_thread {
                        s.fetch_add(0, 1.0);
                    }
                });
            }
        })
        .expect("crossbeam scope");
        assert_eq!(s.get(0), (threads * per_thread) as f64);
    }
}
