//! Per-run observability: what each thread did, what each tile touched,
//! and how the measurements line up against the cost model and the
//! simulator.

use alp_footprint::CostModel;
use alp_machine::TrafficReport;
use std::time::Duration;

/// How tiles are handed to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Tile `t` runs on thread `t mod threads`, fixed up front.
    Static,
    /// Threads claim tiles from a shared counter as they go idle
    /// (self-scheduling / work stealing from a central queue).
    Dynamic,
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Static => write!(f, "static"),
            Schedule::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// What one tile's execution touched (measured during the first
/// sequential repetition; later repetitions touch the same lines).
#[derive(Debug, Clone)]
pub struct TileMetrics {
    /// Tile id (== the processor id of `assign_rect`'s numbering).
    pub tile: usize,
    /// Thread that executed the tile.
    pub thread: usize,
    /// Iterations in the tile (per repetition).
    pub iterations: u64,
    /// Distinct cache lines the tile touched, or `None` when touch
    /// tracking was off.
    pub distinct_lines: Option<u64>,
    /// Time spent executing the tile, summed over repetitions.
    pub busy: Duration,
}

/// What one OS thread did over the whole run.
#[derive(Debug, Clone)]
pub struct ThreadMetrics {
    /// Thread index.
    pub thread: usize,
    /// Tiles this thread executed (counting each tile once even though
    /// every repetition revisits it).
    pub tiles_run: usize,
    /// Total iterations executed across all repetitions.
    pub iterations: u64,
    /// Distinct cache lines touched across all its tiles, or `None`
    /// when touch tracking was off.
    pub distinct_lines: Option<u64>,
    /// Time spent inside tile execution (excludes barrier waits).
    pub busy: Duration,
    /// Total time parked at end-of-repetition barriers (load imbalance
    /// plus barrier mechanics), summed over repetitions.
    pub barrier_wait: Duration,
}

/// The result of one parallel execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// OS threads used.
    pub threads: usize,
    /// Tiles (virtual processors) in the partition.
    pub tiles: usize,
    /// Scheduling mode.
    pub schedule: Schedule,
    /// Cache-line size used for touch counting (elements per line).
    pub line_size: u64,
    /// Outer sequential repetitions executed.
    pub repetitions: u64,
    /// Total iterations executed (all threads, all repetitions).
    pub total_iterations: u64,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Whether touch counts are exact (bitset) or Bloom estimates.
    pub touches_exact: bool,
    /// Contained tile panics that were successfully retried in place
    /// (see `ExecOptions::max_retries`); 0 on a fault-free run.
    pub retries: u64,
    /// In-kernel cooperative cancellation polls performed (one per
    /// `POLL_INTERVAL` iterations inside tiles; between-tile polls are
    /// not counted).  Observability for the hardening overhead.
    pub cancellation_polls: u64,
    /// Per-thread metrics, indexed by thread.
    pub per_thread: Vec<ThreadMetrics>,
    /// Per-tile metrics, indexed by tile.
    pub per_tile: Vec<TileMetrics>,
    /// Per-repetition barrier cost: the longest time any thread spent
    /// parked at that repetition's end-of-doall barrier(s) — the
    /// synchronization term a latency calibration fits its per-barrier
    /// coefficient from.  One entry per completed repetition.
    pub barrier_waits: Vec<Duration>,
}

impl RunReport {
    /// Largest per-tile distinct-line count — the measured analogue of
    /// the model's worst-tile cumulative footprint.  `None` when touch
    /// tracking was off.
    pub fn max_tile_footprint(&self) -> Option<u64> {
        self.per_tile.iter().filter_map(|t| t.distinct_lines).max()
    }

    /// Mean per-repetition barrier wait on the critical path, or `None`
    /// when no repetition completed a barrier (e.g. an empty run).
    pub fn mean_barrier_wait(&self) -> Option<Duration> {
        if self.barrier_waits.is_empty() {
            return None;
        }
        let total: Duration = self.barrier_waits.iter().sum();
        Some(total / self.barrier_waits.len() as u32)
    }

    /// Mean distinct-line count over non-empty tiles.
    pub fn mean_tile_footprint(&self) -> Option<f64> {
        let counts: Vec<u64> = self
            .per_tile
            .iter()
            .filter(|t| t.iterations > 0)
            .filter_map(|t| t.distinct_lines)
            .collect();
        if counts.is_empty() {
            return None;
        }
        Some(counts.iter().sum::<u64>() as f64 / counts.len() as f64)
    }

    /// Compare measured per-tile footprints against the model's
    /// cumulative-footprint prediction for tiles of `tile_extents`
    /// (Theorem 4 / Eq. 2).
    pub fn compare_with_model(
        &self,
        model: &CostModel,
        tile_extents: &[i128],
    ) -> Option<ModelComparison> {
        let measured = self.max_tile_footprint()?;
        let predicted = model.cost_rect(tile_extents).to_f64();
        Some(ModelComparison {
            predicted_per_tile: predicted,
            measured_max_tile: measured,
            ratio: if predicted > 0.0 {
                measured as f64 / predicted
            } else {
                f64::INFINITY
            },
            exact: self.touches_exact,
        })
    }

    /// Compare per-tile distinct lines against the simulator's
    /// per-processor cold misses.  With unit lines and infinite caches
    /// both count exactly "first touches", so tile `t` should match the
    /// simulator's processor `t` up to repetition effects.
    pub fn compare_with_traffic(&self, traffic: &TrafficReport) -> Vec<(u64, u64)> {
        self.per_tile
            .iter()
            .zip(&traffic.per_processor)
            .map(|(t, c)| (t.distinct_lines.unwrap_or(0), c.cold_misses))
            .collect()
    }

    /// Human-oriented table of per-thread metrics.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "threads {}  tiles {}  schedule {}  reps {}  line-size {}  wall {:.3?}\n",
            self.threads, self.tiles, self.schedule, self.repetitions, self.line_size, self.wall
        ));
        s.push_str("thread   tiles  iterations  distinct-lines        busy     barrier\n");
        for t in &self.per_thread {
            let lines = match t.distinct_lines {
                Some(n) if self.touches_exact => n.to_string(),
                Some(n) => format!("~{n}"),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "{:>6}  {:>6}  {:>10}  {:>14}  {:>10.3?}  {:>10.3?}\n",
                t.thread, t.tiles_run, t.iterations, lines, t.busy, t.barrier_wait
            ));
        }
        let max_fp = self
            .max_tile_footprint()
            .map_or("-".to_string(), |n| n.to_string());
        s.push_str(&format!(
            "total iterations {}  max tile footprint {} lines\n",
            self.total_iterations, max_fp
        ));
        if self.retries > 0 {
            s.push_str(&format!("tile retries {}\n", self.retries));
        }
        s
    }
}

/// Measured-vs-predicted footprint summary.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model prediction: cumulative footprint of one (interior) tile.
    pub predicted_per_tile: f64,
    /// Measured: distinct lines of the worst tile.
    pub measured_max_tile: u64,
    /// measured / predicted.
    pub ratio: f64,
    /// Whether the measurement is exact.
    pub exact: bool,
}

impl ModelComparison {
    /// True when measured is within `factor` of predicted in either
    /// direction (e.g. `factor = 2.0` accepts 0.5×..2×).
    pub fn within(&self, factor: f64) -> bool {
        self.ratio.is_finite() && self.ratio >= 1.0 / factor && self.ratio <= factor
    }
}
