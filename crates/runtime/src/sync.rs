//! Panic-safe synchronization for the executor.
//!
//! `std::sync::Barrier` is the wrong primitive for a runtime with a
//! failure model: when one worker dies between two `wait()` calls the
//! remaining workers block forever — the barrier has no way to learn
//! that the missing party will never arrive.  [`CancellableBarrier`]
//! fixes that with a *cancel* operation: any thread (typically one that
//! caught a panic, hit a deadline, or observed an external
//! [`CancelToken`]) can cancel the barrier, which wakes every current
//! waiter and makes every future `wait()` return immediately with
//! [`BarrierCancelled`].  Workers treat that as "drain now": stop
//! scheduling tiles, return partial metrics, let the scope join.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The barrier was cancelled while (or before) waiting; the caller must
/// stop doing work and drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCancelled;

#[derive(Debug)]
struct BarrierState {
    /// Threads currently parked in this generation.
    waiting: usize,
    /// Incremented each time a full cohort is released.
    generation: u64,
    cancelled: bool,
}

/// A reusable rendezvous for `n` threads that can be torn down safely.
///
/// Semantics match `std::sync::Barrier` (the `n`-th waiter releases the
/// cohort and is told it is the leader) until [`cancel`] is called, at
/// which point all current waiters wake with `Err(BarrierCancelled)`
/// and all future waits fail the same way.  Cancellation is permanent
/// for the life of the barrier — it models "this run is over", not a
/// transient wake-up.
///
/// [`cancel`]: CancellableBarrier::cancel
#[derive(Debug)]
pub struct CancellableBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

impl CancellableBarrier {
    /// A barrier for `n` threads.  `n` must be at least 1 (a 0-party
    /// barrier can never release and would deadlock its first waiter,
    /// which is exactly the footgun `std::sync::Barrier::new(0)` has).
    pub fn new(n: usize) -> Self {
        CancellableBarrier {
            n: n.max(1),
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                cancelled: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all `n` threads have called `wait` — or the barrier
    /// is cancelled.  Returns `Ok(true)` for exactly one thread of each
    /// released cohort (the leader), `Ok(false)` for the rest.
    pub fn wait(&self) -> Result<bool, BarrierCancelled> {
        let mut st = lock_unpoisoned(&self.state);
        if st.cancelled {
            return Err(BarrierCancelled);
        }
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(true);
        }
        let gen = st.generation;
        while st.generation == gen && !st.cancelled {
            st = self
                .cvar
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.cancelled {
            Err(BarrierCancelled)
        } else {
            Ok(false)
        }
    }

    /// Tear the barrier down: wake every waiter with
    /// [`BarrierCancelled`] and make all future waits fail.  Idempotent.
    pub fn cancel(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.cancelled = true;
        self.cvar.notify_all();
    }

    /// True once [`cancel`](CancellableBarrier::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        lock_unpoisoned(&self.state).cancelled
    }
}

/// Lock a mutex, shrugging off poison: the executor's shared state is
/// only mutated under short, panic-free critical sections, and the run
/// is being torn down when poison could appear anyway.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A shareable cooperative cancellation flag.
///
/// Clone the token and hand one copy to [`ExecOptions::cancel`]; calling
/// [`cancel`](CancelToken::cancel) from any thread makes the run wind
/// down at its next cancellation poll (between tiles, and every
/// [`POLL_INTERVAL`](crate::POLL_INTERVAL) iterations inside the kernel
/// loop) and return [`RuntimeError::Cancelled`].
///
/// [`ExecOptions::cancel`]: crate::ExecOptions::cancel
/// [`RuntimeError::Cancelled`]: crate::RuntimeError::Cancelled
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation.  Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn releases_full_cohort_with_one_leader() {
        let b = CancellableBarrier::new(4);
        let leaders: usize = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|_| b.wait().expect("not cancelled") as usize))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("scope");
        assert_eq!(leaders, 1);
    }

    #[test]
    fn cancel_wakes_current_and_future_waiters() {
        let b = CancellableBarrier::new(2);
        crossbeam::scope(|s| {
            let waiter = s.spawn(|_| b.wait());
            // Give the waiter time to park, then cancel instead of
            // joining the barrier.
            std::thread::sleep(Duration::from_millis(20));
            b.cancel();
            assert_eq!(waiter.join().unwrap(), Err(BarrierCancelled));
        })
        .expect("scope");
        // Late arrivals fail fast instead of blocking forever.
        assert_eq!(b.wait(), Err(BarrierCancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn reusable_across_generations() {
        let b = CancellableBarrier::new(2);
        for _ in 0..3 {
            crossbeam::scope(|s| {
                let h = s.spawn(|_| b.wait());
                assert!(b.wait().is_ok());
                assert!(h.join().unwrap().is_ok());
            })
            .expect("scope");
        }
    }

    #[test]
    fn zero_party_barrier_is_clamped() {
        // new(0) acts as new(1): a single waiter releases itself.
        let b = CancellableBarrier::new(0);
        assert_eq!(b.wait(), Ok(true));
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }
}
