//! The parallel executor: P OS threads running a compiled kernel over
//! the tiles of a partition, with a barrier at the end of each outer
//! sequential repetition.

use crate::kernel::Kernel;
use crate::report::{RunReport, Schedule, ThreadMetrics, TileMetrics};
use crate::store::ArrayStore;
use crate::tiles::{explicit_tiles, rect_tiles, IterBox};
use crate::touch::TouchSet;
use crate::RuntimeError;
use alp_linalg::IVec;
use alp_loopir::{AccessKind, LoopNest};
use alp_machine::ArrayLayout;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Knobs for one run.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// OS threads to use; 0 means one per tile (capped at the tile
    /// count either way).
    pub threads: usize,
    /// Static round-robin or dynamic self-scheduling.
    pub schedule: Schedule,
    /// Elements per cache line for touch counting.
    pub line_size: u64,
    /// Record distinct-line touch counts (small overhead, first
    /// repetition only).
    pub track_touches: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            schedule: Schedule::Static,
            line_size: 1,
            track_touches: true,
        }
    }
}

/// One unit of schedulable work.
#[derive(Debug, Clone)]
enum Work {
    /// A rectangular block of iterations.
    Box(IterBox),
    /// An explicit iteration list (from a codegen `Assignment`).
    Points(Vec<Vec<i64>>),
}

impl Work {
    fn iterations(&self) -> u64 {
        match self {
            Work::Box(b) => b.volume(),
            Work::Points(p) => p.len() as u64,
        }
    }

    fn for_each_point(&self, mut f: impl FnMut(&[i64])) {
        match self {
            Work::Box(b) => b.for_each_point(f),
            Work::Points(pts) => {
                for p in pts {
                    f(p);
                }
            }
        }
    }
}

/// A nest compiled and partitioned, ready to run any number of times.
#[derive(Debug)]
pub struct Executor {
    nest: LoopNest,
    layout: ArrayLayout,
    kernel: Kernel,
    work: Vec<Work>,
    /// Interior-tile extents λ (empty for explicit assignments).
    tile_extents: Vec<i128>,
    repetitions: u64,
}

impl Executor {
    /// Partition the nest's iteration space over a rectangular virtual
    /// processor grid (one tile per grid cell, `assign_rect` numbering).
    pub fn from_grid(nest: &LoopNest, grid: &[i128]) -> Result<Executor, RuntimeError> {
        let layout = ArrayLayout::from_nest(nest);
        let kernel = Kernel::compile(nest, &layout)?;
        let (tiles, chunks) = rect_tiles(nest, grid)?;
        Ok(Executor {
            nest: nest.clone(),
            repetitions: reps(nest)?,
            layout,
            kernel,
            work: tiles.into_iter().map(Work::Box).collect(),
            // chunks are iterations per tile; λ is the inclusive extent
            // (λ + 1 iterations), the convention of RectPartition and
            // CostModel::cost_rect.
            tile_extents: chunks.iter().map(|c| c - 1).collect(),
        })
    }

    /// Build an executor straight from a saved [`alp_plan::PartitionPlan`]:
    /// the nest is reconstructed from the plan's embedded source (with
    /// its fingerprint re-verified) and tiled on the plan's processor
    /// grid.
    pub fn from_plan(plan: &alp_plan::PartitionPlan) -> Result<Executor, RuntimeError> {
        let nest = plan.nest()?;
        Executor::from_grid(&nest, &plan.proc_grid)
    }

    /// Run an explicit per-processor iteration assignment (e.g. from
    /// `alp_codegen::assign_rect` or `assign_para`).
    pub fn from_assignment(
        nest: &LoopNest,
        assignment: &[Vec<IVec>],
    ) -> Result<Executor, RuntimeError> {
        let layout = ArrayLayout::from_nest(nest);
        let kernel = Kernel::compile(nest, &layout)?;
        let work = explicit_tiles(assignment)?
            .into_iter()
            .map(Work::Points)
            .collect();
        Ok(Executor {
            nest: nest.clone(),
            repetitions: reps(nest)?,
            layout,
            kernel,
            work,
            tile_extents: Vec::new(),
        })
    }

    /// The memory layout shared by executor and simulator.
    pub fn layout(&self) -> &ArrayLayout {
        &self.layout
    }

    /// Number of tiles (virtual processors).
    pub fn tile_count(&self) -> usize {
        self.work.len()
    }

    /// Interior-tile extents λ, in the paper's inclusive convention
    /// (a tile spans `λ_k + 1` iterations along dimension `k`); empty
    /// for explicit assignments.
    pub fn tile_extents(&self) -> &[i128] {
        &self.tile_extents
    }

    /// A store sized for this nest, seeded with integer-valued data.
    pub fn seeded_store(&self, seed: u64) -> ArrayStore {
        ArrayStore::seeded(self.layout.total_lines(), seed)
    }

    /// Execute the nest in parallel, mutating `store` in place.
    pub fn run(&self, store: &ArrayStore, opts: &ExecOptions) -> RunReport {
        let tiles = self.work.len();
        let threads = match opts.threads {
            0 => tiles.max(1),
            t => t.min(tiles.max(1)),
        };
        let barrier = Barrier::new(threads);
        let next_tile = AtomicUsize::new(0);
        let total_lines = self.layout.total_lines();
        let wall_start = Instant::now();

        struct ThreadOut {
            metrics: ThreadMetrics,
            tiles: Vec<TileMetrics>,
            exact: bool,
        }

        let mut outs: Vec<ThreadOut> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let barrier = &barrier;
                    let next_tile = &next_tile;
                    scope.spawn(move |_| {
                        let mut thread_touch = opts
                            .track_touches
                            .then(|| TouchSet::new(total_lines, opts.line_size));
                        let mut scratch = opts
                            .track_touches
                            .then(|| TouchSet::new(total_lines, opts.line_size));
                        let mut tile_metrics: Vec<TileMetrics> = Vec::new();
                        let mut iterations = 0u64;
                        let mut busy = std::time::Duration::ZERO;
                        for rep in 0..self.repetitions {
                            // Touches repeat identically every rep;
                            // track only the first.
                            let track = rep == 0;
                            let mut run_tile = |tile: usize| {
                                let t0 = Instant::now();
                                let work = &self.work[tile];
                                if track {
                                    if let Some(sc) = scratch.as_mut() {
                                        sc.clear();
                                        work.for_each_point(|i| {
                                            self.kernel.for_each_access(i, |e, _w| sc.insert(e));
                                            self.kernel.execute(i, store);
                                        });
                                    } else {
                                        work.for_each_point(|i| self.kernel.execute(i, store));
                                    }
                                } else {
                                    work.for_each_point(|i| self.kernel.execute(i, store));
                                }
                                let dt = t0.elapsed();
                                busy += dt;
                                iterations += work.iterations();
                                if track {
                                    let lines = scratch.as_ref().map(TouchSet::count);
                                    if let (Some(tt), Some(sc)) =
                                        (thread_touch.as_mut(), scratch.as_ref())
                                    {
                                        tt.merge(sc);
                                    }
                                    tile_metrics.push(TileMetrics {
                                        tile,
                                        thread: t,
                                        iterations: work.iterations(),
                                        distinct_lines: lines,
                                        busy: dt,
                                    });
                                } else if let Some(m) =
                                    tile_metrics.iter_mut().find(|m| m.tile == tile)
                                {
                                    m.busy += dt;
                                }
                            };
                            match opts.schedule {
                                Schedule::Static => {
                                    let mut tile = t;
                                    while tile < tiles {
                                        run_tile(tile);
                                        tile += threads;
                                    }
                                }
                                Schedule::Dynamic => loop {
                                    let tile = next_tile.fetch_add(1, Ordering::SeqCst);
                                    if tile >= tiles {
                                        break;
                                    }
                                    run_tile(tile);
                                },
                            }
                            // End-of-doall barrier: no thread starts
                            // repetition r+1 until all finish r.
                            let res = barrier.wait();
                            if opts.schedule == Schedule::Dynamic {
                                if res.is_leader() {
                                    next_tile.store(0, Ordering::SeqCst);
                                }
                                barrier.wait();
                            }
                        }
                        let exact = thread_touch.as_ref().is_none_or(TouchSet::is_exact);
                        ThreadOut {
                            metrics: ThreadMetrics {
                                thread: t,
                                tiles_run: tile_metrics.len(),
                                iterations,
                                distinct_lines: thread_touch.as_ref().map(TouchSet::count),
                                busy,
                            },
                            tiles: tile_metrics,
                            exact,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect()
        })
        .expect("runtime thread scope");

        let wall = wall_start.elapsed();
        outs.sort_by_key(|o| o.metrics.thread);
        let touches_exact = outs.iter().all(|o| o.exact);
        let mut per_tile: Vec<TileMetrics> =
            outs.iter().flat_map(|o| o.tiles.iter().cloned()).collect();
        per_tile.sort_by_key(|m| m.tile);
        let per_thread: Vec<ThreadMetrics> = outs.into_iter().map(|o| o.metrics).collect();
        RunReport {
            threads,
            tiles,
            schedule: opts.schedule,
            line_size: opts.line_size.max(1),
            repetitions: self.repetitions,
            total_iterations: per_thread.iter().map(|m| m.iterations).sum(),
            wall,
            touches_exact,
            per_thread,
            per_tile,
        }
    }

    /// Execute the nest *sequentially* from `init`, interpreting the IR
    /// directly (`ArrayRef::eval` + `ArrayLayout::line`) rather than
    /// through the compiled kernel — an independent implementation path
    /// that the parallel result must match bit for bit.
    pub fn run_reference(&self, init: &[f64]) -> Vec<f64> {
        let mut data = init.to_vec();
        let stmts: Vec<RefStmt> = self.nest.body.iter().map(RefStmt::new).collect();
        for _rep in 0..self.repetitions {
            for pt in self.nest.iteration_points() {
                for st in &stmts {
                    let lhs = self.line_of(st.stmt, &pt);
                    match st.mode {
                        RefMode::Accumulate => {
                            let mut delta = 0.0;
                            for r in &st.sources {
                                delta += data[self.line_of_ref(r, &pt)];
                            }
                            data[lhs] += delta;
                        }
                        RefMode::Assign => {
                            let mut v = 0.0;
                            for r in &st.sources {
                                v += data[self.line_of_ref(r, &pt)];
                            }
                            data[lhs] = v;
                        }
                    }
                }
            }
        }
        data
    }

    /// Run on a seeded store and check the parallel result against the
    /// sequential reference, bit for bit.
    pub fn verify(&self, seed: u64, opts: &ExecOptions) -> ExecOutcome {
        let store = self.seeded_store(seed);
        let init = store.snapshot();
        let report = self.run(&store, opts);
        let reference = self.run_reference(&init);
        let parallel = store.snapshot();
        let matches_reference = parallel.len() == reference.len()
            && parallel
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        ExecOutcome {
            report,
            matches_reference,
        }
    }

    fn line_of(&self, st: &alp_loopir::Statement, pt: &IVec) -> usize {
        let id = self.layout.array_id(&st.lhs.array).expect("known array");
        self.layout.line(id, &st.lhs.eval(pt)) as usize
    }

    fn line_of_ref(&self, r: &alp_loopir::ArrayRef, pt: &IVec) -> usize {
        let id = self.layout.array_id(&r.array).expect("known array");
        self.layout.line(id, &r.eval(pt)) as usize
    }
}

/// Result of [`Executor::verify`].
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Metrics from the parallel run.
    pub report: RunReport,
    /// Whether the parallel result equals the sequential reference
    /// bit for bit.
    pub matches_reference: bool,
}

enum RefMode {
    Assign,
    Accumulate,
}

/// A statement pre-classified for the interpreted reference path, using
/// the same accumulate rule as the kernel compiler but none of its code.
struct RefStmt<'a> {
    stmt: &'a alp_loopir::Statement,
    mode: RefMode,
    sources: Vec<&'a alp_loopir::ArrayRef>,
}

impl<'a> RefStmt<'a> {
    fn new(st: &'a alp_loopir::Statement) -> Self {
        let is_self = |r: &alp_loopir::ArrayRef| {
            r.kind == AccessKind::Accumulate
                && r.array == st.lhs.array
                && r.subscripts == st.lhs.subscripts
        };
        if st.lhs.kind == AccessKind::Accumulate
            && st.rhs.iter().filter(|r| is_self(r)).count() == 1
        {
            RefStmt {
                stmt: st,
                mode: RefMode::Accumulate,
                sources: st.rhs.iter().filter(|r| !is_self(r)).collect(),
            }
        } else {
            RefStmt {
                stmt: st,
                mode: RefMode::Assign,
                sources: st.rhs.iter().collect(),
            }
        }
    }
}

fn reps(nest: &LoopNest) -> Result<u64, RuntimeError> {
    u64::try_from(nest.seq_repetitions())
        .map_err(|_| RuntimeError::BadGrid("sequential repetition count overflows u64".into()))
}
