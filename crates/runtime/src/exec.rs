//! The parallel executor: P OS threads running a compiled kernel over
//! the tiles of a partition, with a barrier at the end of each outer
//! sequential repetition.
//!
//! # Failure model
//!
//! The executor is *hardened*: a misbehaving tile cannot take the run
//! (or the process) down with it.
//!
//! * **Panic containment** — every tile executes under
//!   `catch_unwind`.  A panicking kernel yields a structured
//!   [`RuntimeError::TileFailed`] carrying the tile id, repetition, and
//!   panic payload; the end-of-repetition barrier is a
//!   [`CancellableBarrier`](crate::CancellableBarrier), so surviving
//!   workers wake, drain, and join instead of blocking on a cohort
//!   member that will never arrive.
//! * **Deadlines & cancellation** — [`ExecOptions::deadline`] arms a
//!   wall-clock watchdog and [`ExecOptions::cancel`] accepts an external
//!   [`CancelToken`]; both are polled between tiles and *inside* the
//!   kernel loop (the cancel flag every [`POLL_INTERVAL`] iterations,
//!   the deadline clock every `DEADLINE_POLL_STRIDE`-th such poll), so
//!   even a single runaway tile (e.g. an adversarial explicit-iteration
//!   list) is interrupted promptly.  The run returns
//!   [`RuntimeError::DeadlineExceeded`] / [`RuntimeError::Cancelled`].
//! * **Resource guard** — [`ExecOptions::memory_budget`] bounds the
//!   bytes a run may allocate (array store + touch-tracking bitsets);
//!   over-budget runs are refused up front with
//!   [`RuntimeError::ResourceExceeded`] instead of OOM-ing mid-flight.
//! * **Bounded retry** — with [`ExecOptions::max_retries`] > 0, a
//!   contained panic in a *retry-safe* tile is re-executed in place on
//!   the surviving worker.  Retry safety is deliberately conservative
//!   (see [`Executor::retry_safe`]): only first-repetition tiles of
//!   nests whose statements are plain assigns reading only arrays the
//!   nest never writes.  Everything else fails fast, because a partial
//!   attempt may already have published state a re-run would observe
//!   (an accumulate has folded deltas into shared cells; a
//!   read-after-write nest would feed the second attempt its own
//!   output).

use crate::kernel::Kernel;
use crate::report::{RunReport, Schedule, ThreadMetrics, TileMetrics};
use crate::store::ArrayStore;
use crate::sync::{CancelToken, CancellableBarrier};
use crate::tiles::{explicit_tiles, rect_tiles, IterBox};
use crate::touch::TouchSet;
use crate::RuntimeError;
use alp_linalg::IVec;
use alp_loopir::{AccessKind, LoopNest};
use alp_machine::ArrayLayout;
use alp_plan::{Transform, TransformedDomain};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many kernel iterations run between two cooperative cancellation
/// polls inside a tile.  A poll is one relaxed atomic load, so at this
/// granularity the fault-free overhead is far below a percent while a
/// runaway tile is still interrupted within microseconds of a stop flag
/// or cancel token firing.
pub const POLL_INTERVAL: u64 = 1024;

/// Of the in-tile polls, how often the (much pricier) deadline clock is
/// actually read: every `DEADLINE_POLL_STRIDE`-th poll, plus once at
/// every tile boundary.  `Instant::now()` can cost hundreds of
/// nanoseconds on kernels without a vDSO fast path, so reading it at
/// every poll shows up as percent-level overhead on short kernels; at
/// this stride a deadline is still detected within
/// `POLL_INTERVAL * DEADLINE_POLL_STRIDE` iterations.
const DEADLINE_POLL_STRIDE: u64 = 8;

/// Knobs for one run.
#[derive(Clone)]
pub struct ExecOptions {
    /// OS threads to use; 0 means one per tile (capped at the tile
    /// count either way).
    pub threads: usize,
    /// Static round-robin or dynamic self-scheduling.
    pub schedule: Schedule,
    /// Elements per cache line for touch counting.
    pub line_size: u64,
    /// Record distinct-line touch counts (small overhead, first
    /// repetition only).
    pub track_touches: bool,
    /// Wall-clock budget for the whole run; exceeded runs are cancelled
    /// cooperatively and return [`RuntimeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// External cooperative cancellation; when the token fires the run
    /// winds down and returns [`RuntimeError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// How many times a contained tile panic may be retried in place
    /// (only on retry-safe nests, see [`Executor::retry_safe`]).
    pub max_retries: u32,
    /// Byte budget for the run's allocations (array store plus touch
    /// bitsets); over-budget runs are refused with
    /// [`RuntimeError::ResourceExceeded`] before allocating.
    pub memory_budget: Option<u64>,
    /// Deterministic fault injection hook (chaos testing only).
    #[cfg(feature = "chaos")]
    pub fault_injector: Option<std::sync::Arc<dyn FaultInjector>>,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ExecOptions");
        d.field("threads", &self.threads)
            .field("schedule", &self.schedule)
            .field("line_size", &self.line_size)
            .field("track_touches", &self.track_touches)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel.is_some())
            .field("max_retries", &self.max_retries)
            .field("memory_budget", &self.memory_budget);
        #[cfg(feature = "chaos")]
        d.field("fault_injector", &self.fault_injector.is_some());
        d.finish()
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            schedule: Schedule::Static,
            line_size: 1,
            track_touches: true,
            deadline: None,
            cancel: None,
            max_retries: 0,
            memory_budget: None,
            #[cfg(feature = "chaos")]
            fault_injector: None,
        }
    }
}

/// Deterministic fault-injection hooks, called around every tile
/// execution when the `chaos` feature is enabled.  Implemented by
/// `alp-chaos`'s `FaultPlan`; both hooks run *inside* the executor's
/// panic containment, so an injected panic exercises exactly the
/// production failure path.
#[cfg(feature = "chaos")]
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Called before tile `tile` executes in repetition `rep`.  May
    /// panic (panic fault) or sleep (delay fault).
    fn before_tile(&self, tile: usize, rep: u64);
    /// Called after tile `tile` completes in repetition `rep`.  May
    /// corrupt `store` (silent-fault injection).
    fn after_tile(&self, tile: usize, rep: u64, store: &ArrayStore);
}

/// One unit of schedulable work.
#[derive(Debug, Clone)]
enum Work {
    /// A rectangular block of iterations.
    Box(IterBox),
    /// An explicit iteration list (from a codegen `Assignment`).
    Points(Vec<Vec<i64>>),
    /// A rectangular `j`-space block of a transformed (skewed) plan,
    /// clipped against the shared transformed domain.  Points handed to
    /// the kernel are *j-space* coordinates; the kernel must have been
    /// built by [`Kernel::compile_transformed`].
    Clipped {
        /// The unclipped rectangular tile in `j`-space.
        bx: IterBox,
        /// The domain every tile of the plan clips against.
        domain: Arc<TransformedDomain>,
        /// Exact in-domain point count, precomputed at build time.
        points: u64,
    },
}

impl Work {
    fn iterations(&self) -> u64 {
        match self {
            Work::Box(b) => b.volume(),
            Work::Points(p) => p.len() as u64,
            Work::Clipped { points, .. } => *points,
        }
    }

    /// Visit points until `f` returns `false`; returns `false` when the
    /// walk was stopped early.
    fn try_for_each_point(&self, mut f: impl FnMut(&[i64]) -> bool) -> bool {
        match self {
            Work::Box(b) => b.try_for_each_point(f),
            Work::Points(pts) => {
                for p in pts {
                    if !f(p) {
                        return false;
                    }
                }
                true
            }
            Work::Clipped { bx, domain, .. } => domain.for_each_row(bx, |j, lo, hi| {
                let last = j.len() - 1;
                for x in lo..=hi {
                    j[last] = x;
                    if !f(j) {
                        return false;
                    }
                }
                true
            }),
        }
    }
}

/// Why a run is winding down, recorded once by the first thread that
/// notices; everyone else just drains.
struct RunControl<'a> {
    barrier: CancellableBarrier,
    stop: AtomicBool,
    reason: Mutex<Option<RuntimeError>>,
    external: Option<&'a CancelToken>,
    deadline: Option<(Instant, Duration)>,
}

impl RunControl<'_> {
    /// One cooperative cancellation poll.  Returns `false` when the run
    /// must stop (and records the reason on the first detection).
    /// `check_clock` gates the deadline's `Instant::now()` read — the
    /// stop flag and cancel token are always checked.
    fn keep_going(&self, check_clock: bool) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return false;
        }
        if let Some(tok) = self.external {
            if tok.is_cancelled() {
                self.fail(RuntimeError::Cancelled);
                return false;
            }
        }
        if check_clock {
            if let Some((at, budget)) = self.deadline {
                if Instant::now() >= at {
                    self.fail(RuntimeError::DeadlineExceeded { deadline: budget });
                    return false;
                }
            }
        }
        true
    }

    /// Record the first failure and wake everyone parked at the
    /// barrier.  Later failures are dropped: the run already has a
    /// cause, and surviving workers drain regardless.
    fn fail(&self, err: RuntimeError) {
        {
            let mut slot = self
                .reason
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        self.barrier.cancel();
    }

    fn into_reason(self) -> Option<RuntimeError> {
        self.reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// The single decision point for whether a contained tile panic may be
/// re-executed in place.  Both the legacy syntactic rule and a
/// certificate-backed verdict flow through here, so the worker loop
/// never re-derives idempotence inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// The conservative array-name rule of [`syntactic_retry_safe`]:
    /// retry only first-repetition tiles of nests it accepts (a later
    /// repetition may observe the previous repetition's output).
    Syntactic {
        /// Whether the rule accepted the nest.
        safe: bool,
    },
    /// An element-precise dataflow verdict from a re-checked plan
    /// certificate: a certified-idempotent nest reads nothing any tile
    /// writes, so a re-run at *any* repetition recomputes identical
    /// values.
    Certified {
        /// The certificate's (re-proven) idempotence verdict.
        idempotent: bool,
    },
}

impl RetryPolicy {
    /// May a tile of repetition `rep` be re-executed after a contained
    /// panic?
    pub fn eligible(&self, rep: u64) -> bool {
        match *self {
            RetryPolicy::Syntactic { safe } => safe && rep == 0,
            RetryPolicy::Certified { idempotent } => idempotent,
        }
    }

    /// Whether the nest is retryable at all (repetition 0).
    pub fn retryable(&self) -> bool {
        self.eligible(0)
    }
}

/// A nest compiled and partitioned, ready to run any number of times.
#[derive(Debug)]
pub struct Executor {
    nest: LoopNest,
    layout: ArrayLayout,
    kernel: Kernel,
    work: Vec<Work>,
    /// Interior-tile extents λ (empty for explicit assignments).
    tile_extents: Vec<i128>,
    repetitions: u64,
    retry: RetryPolicy,
    /// Certified fast path: accumulate via plain read-add-store instead
    /// of atomic CAS.  Set only by [`Executor::apply_certificate`].
    relaxed_stores: bool,
}

impl Executor {
    /// Partition the nest's iteration space over a rectangular virtual
    /// processor grid (one tile per grid cell, `assign_rect` numbering).
    pub fn from_grid(nest: &LoopNest, grid: &[i128]) -> Result<Executor, RuntimeError> {
        let layout = ArrayLayout::from_nest(nest);
        let kernel = Kernel::compile(nest, &layout)?;
        let (tiles, chunks) = rect_tiles(nest, grid)?;
        Ok(Executor {
            retry: RetryPolicy::Syntactic {
                safe: syntactic_retry_safe(nest),
            },
            relaxed_stores: false,
            nest: nest.clone(),
            repetitions: reps(nest)?,
            layout,
            kernel,
            work: tiles.into_iter().map(Work::Box).collect(),
            // chunks are iterations per tile; λ is the inclusive extent
            // (λ + 1 iterations), the convention of RectPartition and
            // CostModel::cost_rect.
            tile_extents: chunks.iter().map(|c| c - 1).collect(),
        })
    }

    /// Build an executor straight from a saved [`alp_plan::PartitionPlan`]:
    /// the nest is reconstructed from the plan's embedded source (with
    /// its fingerprint re-verified) and tiled on the plan's processor
    /// grid.  A schema-v4 plan carrying a [`Transform`] executes its
    /// skewed tiles natively via [`Executor::from_transformed`].
    pub fn from_plan(plan: &alp_plan::PartitionPlan) -> Result<Executor, RuntimeError> {
        let nest = plan.nest()?;
        match &plan.transform {
            None => Executor::from_grid(&nest, &plan.proc_grid),
            Some(t) => Executor::from_transformed(&nest, t, &plan.proc_grid),
        }
    }

    /// Partition the *transformed* space `j = i·U` over a rectangular
    /// grid: tiles are rectangular in `j`, clipped exactly against the
    /// image of the nest's bounds, and the kernel's linear forms are
    /// composed with `U⁻¹` so each `j`-point reads and writes exactly
    /// the elements its pre-image `i`-point would.  The sequential
    /// reference ([`Executor::run_reference`]) still interprets the nest
    /// in original coordinates, so verification stays an independent
    /// end-to-end differential check.
    pub fn from_transformed(
        nest: &LoopNest,
        transform: &Transform,
        grid: &[i128],
    ) -> Result<Executor, RuntimeError> {
        let fp = alp_plan::fingerprint_hex(nest);
        if transform.fingerprint() != fp {
            return Err(RuntimeError::BadPlan(alp_plan::PlanError::Transform(
                format!(
                    "transform was derived for fingerprint {} but the nest hashes to {fp}",
                    transform.fingerprint()
                ),
            )));
        }
        let layout = ArrayLayout::from_nest(nest);
        let kernel = Kernel::compile_transformed(nest, &layout, transform.v())?;
        let (tiles, chunks, domain) =
            alp_plan::transformed_tiles(nest, transform, grid).map_err(RuntimeError::BadPlan)?;
        let domain = Arc::new(domain);
        let work = tiles
            .into_iter()
            .map(|bx| Work::Clipped {
                points: u64::try_from(domain.count(&bx)).expect("tile point count fits u64"),
                bx,
                domain: Arc::clone(&domain),
            })
            .collect();
        Ok(Executor {
            retry: RetryPolicy::Syntactic {
                safe: syntactic_retry_safe(nest),
            },
            relaxed_stores: false,
            nest: nest.clone(),
            repetitions: reps(nest)?,
            layout,
            kernel,
            work,
            tile_extents: chunks.iter().map(|c| c - 1).collect(),
        })
    }

    /// Run an explicit per-processor iteration assignment (e.g. from
    /// `alp_codegen::assign_rect` or `assign_para`).
    pub fn from_assignment(
        nest: &LoopNest,
        assignment: &[Vec<IVec>],
    ) -> Result<Executor, RuntimeError> {
        let layout = ArrayLayout::from_nest(nest);
        let kernel = Kernel::compile(nest, &layout)?;
        let work = explicit_tiles(assignment)?
            .into_iter()
            .map(Work::Points)
            .collect();
        Ok(Executor {
            retry: RetryPolicy::Syntactic {
                safe: syntactic_retry_safe(nest),
            },
            relaxed_stores: false,
            nest: nest.clone(),
            repetitions: reps(nest)?,
            layout,
            kernel,
            work,
            tile_extents: Vec::new(),
        })
    }

    /// The memory layout shared by executor and simulator.
    pub fn layout(&self) -> &ArrayLayout {
        &self.layout
    }

    /// Number of tiles (virtual processors).
    pub fn tile_count(&self) -> usize {
        self.work.len()
    }

    /// Interior-tile extents λ, in the paper's inclusive convention
    /// (a tile spans `λ_k + 1` iterations along dimension `k`); empty
    /// for explicit assignments.
    pub fn tile_extents(&self) -> &[i128] {
        &self.tile_extents
    }

    /// Whether a contained tile panic may be retried at all (see the
    /// module docs and [`ExecOptions::max_retries`]).  Under the default
    /// [`RetryPolicy::Syntactic`]: every statement is a plain assign and
    /// no statement reads an array the nest writes, so re-running a
    /// partially executed tile recomputes exactly the same values.
    /// Accumulate nests are never syntactically retry-safe — a partial
    /// attempt has already folded deltas into shared cells and a re-run
    /// would double-count them — and neither are read-after-write nests,
    /// whose second attempt could observe the first attempt's output.
    /// [`Executor::apply_certificate`] upgrades the policy to an
    /// element-precise certified verdict.
    pub fn retry_safe(&self) -> bool {
        self.retry.retryable()
    }

    /// The active retry decision point.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Consume a *re-checked* plan certificate's verdicts.
    ///
    /// `write_disjoint` must be the conjunction of the certificate's
    /// proven coverage and cross-tile write-disjointness facts — both
    /// are needed before relaxed accumulate stores are sound (coverage
    /// rules out one iteration running in two tiles; disjointness rules
    /// out two tiles writing one element).  `idempotent` is the
    /// certificate's dataflow idempotence verdict and replaces the
    /// syntactic retry rule.
    ///
    /// Callers must pass verdicts from `alp_certify::recheck`-style recomputation,
    /// never bits read straight from a plan file — a tampered file would
    /// otherwise unlock an unsound path.
    pub fn apply_certificate(&mut self, write_disjoint: bool, idempotent: bool) {
        self.relaxed_stores = write_disjoint;
        self.retry = RetryPolicy::Certified { idempotent };
    }

    /// True when a certificate unlocked the plain-store accumulate path.
    pub fn uses_relaxed_stores(&self) -> bool {
        self.relaxed_stores
    }

    /// Bytes this nest's backing store needs (`total_lines × 8`).
    pub fn store_bytes(&self) -> u64 {
        self.layout.total_lines().saturating_mul(8)
    }

    /// Pre-flight estimate of the bytes `run` will allocate under
    /// `opts`: the shared f64 store plus, when touch tracking is on,
    /// two distinct-line sets per worker thread.
    pub fn estimate_run_bytes(&self, opts: &ExecOptions) -> u64 {
        let threads = self.resolve_threads(opts) as u64;
        let touch = if opts.track_touches {
            let lines = self
                .layout
                .total_lines()
                .div_ceil(opts.line_size.max(1))
                .max(1);
            let per_set = if lines <= crate::touch::EXACT_LIMIT_BITS {
                lines.div_ceil(8)
            } else {
                (crate::touch::BLOOM_BITS as u64) / 8
            };
            threads.saturating_mul(2).saturating_mul(per_set)
        } else {
            0
        };
        self.store_bytes().saturating_add(touch)
    }

    /// Enforce [`ExecOptions::memory_budget`] before allocating
    /// anything.
    fn check_budget(&self, opts: &ExecOptions) -> Result<(), RuntimeError> {
        if let Some(budget) = opts.memory_budget {
            let required = self.estimate_run_bytes(opts);
            if required > budget {
                return Err(RuntimeError::ResourceExceeded { required, budget });
            }
        }
        Ok(())
    }

    fn resolve_threads(&self, opts: &ExecOptions) -> usize {
        match opts.threads {
            0 => self.work.len().max(1),
            t => t.min(self.work.len().max(1)),
        }
    }

    /// A store sized for this nest, seeded with integer-valued data.
    pub fn seeded_store(&self, seed: u64) -> ArrayStore {
        ArrayStore::seeded(self.layout.total_lines(), seed)
    }

    /// Execute the nest in parallel, mutating `store` in place.
    ///
    /// Fails (with every worker thread joined and the store in an
    /// unspecified partial state) on a contained tile panic, a missed
    /// deadline, external cancellation, or an exceeded memory budget —
    /// see the module docs for the failure model.
    pub fn run(&self, store: &ArrayStore, opts: &ExecOptions) -> Result<RunReport, RuntimeError> {
        self.check_budget(opts)?;
        let tiles = self.work.len();
        let per_rep: u64 = self.work.iter().map(Work::iterations).sum();
        if tiles == 0 || self.repetitions == 0 || per_rep == 0 {
            // Nothing to execute: an empty tile list, a zero-trip nest,
            // or zero repetitions.  Report the empty run instead of
            // spawning workers against a zero-party barrier.
            return Ok(RunReport {
                threads: 0,
                tiles,
                schedule: opts.schedule,
                line_size: opts.line_size.max(1),
                repetitions: self.repetitions,
                total_iterations: 0,
                wall: Duration::ZERO,
                touches_exact: true,
                retries: 0,
                cancellation_polls: 0,
                per_thread: Vec::new(),
                per_tile: Vec::new(),
                barrier_waits: Vec::new(),
            });
        }
        let threads = self.resolve_threads(opts);
        let ctrl = RunControl {
            barrier: CancellableBarrier::new(threads),
            stop: AtomicBool::new(false),
            reason: Mutex::new(None),
            external: opts.cancel.as_ref(),
            deadline: opts.deadline.map(|d| (Instant::now() + d, d)),
        };
        let next_tile = AtomicUsize::new(0);
        let total_lines = self.layout.total_lines();
        let wall_start = Instant::now();

        let mut outs: Vec<ThreadOut> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let ctrl = &ctrl;
                    let next_tile = &next_tile;
                    scope.spawn(move |_| {
                        let mut w = WorkerState {
                            exec: self,
                            ctrl,
                            opts,
                            store,
                            thread: t,
                            thread_touch: opts
                                .track_touches
                                .then(|| TouchSet::new(total_lines, opts.line_size)),
                            scratch: opts
                                .track_touches
                                .then(|| TouchSet::new(total_lines, opts.line_size)),
                            tile_metrics: Vec::new(),
                            iterations: 0,
                            busy: Duration::ZERO,
                            barrier_wait: Duration::ZERO,
                            rep_waits: Vec::new(),
                            retries: 0,
                            polls: 0,
                        };
                        'reps: for rep in 0..self.repetitions {
                            match opts.schedule {
                                Schedule::Static => {
                                    let mut tile = t;
                                    while tile < tiles {
                                        if !w.run_tile(tile, rep) {
                                            break 'reps;
                                        }
                                        tile += threads;
                                    }
                                }
                                Schedule::Dynamic => loop {
                                    let tile = next_tile.fetch_add(1, Ordering::SeqCst);
                                    if tile >= tiles {
                                        break;
                                    }
                                    if !w.run_tile(tile, rep) {
                                        break 'reps;
                                    }
                                },
                            }
                            // End-of-doall barrier: no thread starts
                            // repetition r+1 until all finish r.  A
                            // cancelled barrier means the run is being
                            // torn down — drain with partial metrics.
                            // The time parked here is measured per
                            // repetition: it is the synchronization
                            // cost (load imbalance + barrier mechanics)
                            // a latency calibration fits against.
                            let wait_start = Instant::now();
                            let Ok(leader) = ctrl.barrier.wait() else {
                                break 'reps;
                            };
                            let mut waited = wait_start.elapsed();
                            if opts.schedule == Schedule::Dynamic {
                                if leader {
                                    next_tile.store(0, Ordering::SeqCst);
                                }
                                let wait_start = Instant::now();
                                if ctrl.barrier.wait().is_err() {
                                    w.barrier_wait += waited;
                                    w.rep_waits.push(waited);
                                    break 'reps;
                                }
                                waited += wait_start.elapsed();
                            }
                            w.barrier_wait += waited;
                            w.rep_waits.push(waited);
                        }
                        w.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(out) => Some(out),
                    Err(payload) => {
                        // A worker panicked *outside* the per-tile
                        // containment (a bug in metrics bookkeeping,
                        // not in a kernel).  Surface it as a structured
                        // failure rather than poisoning the caller.
                        ctrl.fail(RuntimeError::TileFailed {
                            tile: usize::MAX,
                            rep: 0,
                            payload: format!(
                                "worker panicked outside tile containment: {}",
                                payload_string(payload.as_ref())
                            ),
                        });
                        None
                    }
                })
                .collect()
        })
        // The shim's scope only errs when a child panic escaped an
        // explicit join; every handle above *is* joined, so propagate
        // as a structured error just in case rather than panicking.
        .map_err(|payload| RuntimeError::TileFailed {
            tile: usize::MAX,
            rep: 0,
            payload: format!(
                "executor thread scope failed: {}",
                payload_string(payload.as_ref())
            ),
        })?;

        if let Some(err) = ctrl.into_reason() {
            return Err(err);
        }

        let wall = wall_start.elapsed();
        outs.sort_by_key(|o| o.metrics.thread);
        let touches_exact = outs.iter().all(|o| o.exact);
        let retries = outs.iter().map(|o| o.retries).sum();
        let cancellation_polls = outs.iter().map(|o| o.polls).sum();
        let mut per_tile: Vec<TileMetrics> =
            outs.iter().flat_map(|o| o.tiles.iter().cloned()).collect();
        per_tile.sort_by_key(|m| m.tile);
        // Per-repetition critical-path barrier cost: the slowest wait of
        // any thread for that repetition (threads that drained early
        // simply contribute fewer entries).
        let completed_reps = outs.iter().map(|o| o.rep_waits.len()).max().unwrap_or(0);
        let barrier_waits: Vec<Duration> = (0..completed_reps)
            .map(|rep| {
                outs.iter()
                    .filter_map(|o| o.rep_waits.get(rep).copied())
                    .max()
                    .unwrap_or(Duration::ZERO)
            })
            .collect();
        let per_thread: Vec<ThreadMetrics> = outs.into_iter().map(|o| o.metrics).collect();
        Ok(RunReport {
            threads,
            tiles,
            schedule: opts.schedule,
            line_size: opts.line_size.max(1),
            repetitions: self.repetitions,
            total_iterations: per_thread.iter().map(|m| m.iterations).sum(),
            wall,
            touches_exact,
            retries,
            cancellation_polls,
            per_thread,
            per_tile,
            barrier_waits,
        })
    }

    /// Execute the nest *sequentially* from `init`, interpreting the IR
    /// directly (`ArrayRef::eval` + `ArrayLayout::line`) rather than
    /// through the compiled kernel — an independent implementation path
    /// that the parallel result must match bit for bit.
    pub fn run_reference(&self, init: &[f64]) -> Vec<f64> {
        let mut data = init.to_vec();
        let stmts: Vec<RefStmt> = self.nest.body.iter().map(RefStmt::new).collect();
        for _rep in 0..self.repetitions {
            for pt in self.nest.iteration_points() {
                for st in &stmts {
                    let lhs = self.line_of(st.stmt, &pt);
                    match st.mode {
                        RefMode::Accumulate => {
                            let mut delta = 0.0;
                            for r in &st.sources {
                                delta += data[self.line_of_ref(r, &pt)];
                            }
                            data[lhs] += delta;
                        }
                        RefMode::Assign => {
                            let mut v = 0.0;
                            for r in &st.sources {
                                v += data[self.line_of_ref(r, &pt)];
                            }
                            data[lhs] = v;
                        }
                    }
                }
            }
        }
        data
    }

    /// Run the nest sequentially on freshly seeded data, without the
    /// parallel machinery (no threads, no touch bitsets, no snapshot
    /// copies) — the degraded mode `--fallback-seq` uses when a run is
    /// over its memory budget.
    pub fn run_sequential(&self, seed: u64) -> Vec<f64> {
        let init = crate::store::seeded_values(self.layout.total_lines(), seed);
        self.run_reference(&init)
    }

    /// Run on a seeded store and check the parallel result against the
    /// sequential reference, bit for bit.
    pub fn verify(&self, seed: u64, opts: &ExecOptions) -> Result<ExecOutcome, RuntimeError> {
        self.check_budget(opts)?;
        let store = self.seeded_store(seed);
        let init = store.snapshot();
        let report = self.run(&store, opts)?;
        let reference = self.run_reference(&init);
        let parallel = store.snapshot();
        let matches_reference = parallel.len() == reference.len()
            && parallel
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        Ok(ExecOutcome {
            report,
            matches_reference,
        })
    }

    fn line_of(&self, st: &alp_loopir::Statement, pt: &IVec) -> usize {
        // Unreachable expect: the layout was built from this same nest,
        // so every array the body names has an id.
        let id = self.layout.array_id(&st.lhs.array).expect("known array");
        self.layout.line(id, &st.lhs.eval(pt)) as usize
    }

    fn line_of_ref(&self, r: &alp_loopir::ArrayRef, pt: &IVec) -> usize {
        // Unreachable expect: same invariant as `line_of`.
        let id = self.layout.array_id(&r.array).expect("known array");
        self.layout.line(id, &r.eval(pt)) as usize
    }
}

/// Per-worker mutable state, factored out so the tile loop stays
/// readable now that it contains containment, retry, and polling.
struct WorkerState<'a> {
    exec: &'a Executor,
    ctrl: &'a RunControl<'a>,
    opts: &'a ExecOptions,
    store: &'a ArrayStore,
    thread: usize,
    thread_touch: Option<TouchSet>,
    scratch: Option<TouchSet>,
    tile_metrics: Vec<TileMetrics>,
    iterations: u64,
    busy: Duration,
    barrier_wait: Duration,
    /// Time parked at the end-of-repetition barrier(s), one entry per
    /// completed repetition.
    rep_waits: Vec<Duration>,
    retries: u64,
    polls: u64,
}

struct ThreadOut {
    metrics: ThreadMetrics,
    tiles: Vec<TileMetrics>,
    rep_waits: Vec<Duration>,
    exact: bool,
    retries: u64,
    polls: u64,
}

impl WorkerState<'_> {
    /// Execute one tile (with containment, polling, and bounded retry).
    /// Returns `false` when this worker must stop scheduling and drain.
    fn run_tile(&mut self, tile: usize, rep: u64) -> bool {
        if !self.ctrl.keep_going(true) {
            return false;
        }
        let mut attempts = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.run_tile_once(tile, rep))) {
                Ok(completed) => return completed,
                Err(payload) => {
                    let payload = payload_string(payload.as_ref());
                    // Retry only when re-execution is provably
                    // idempotent — the policy (syntactic or certified)
                    // is the single decision point.
                    let retryable = self.exec.retry.eligible(rep);
                    if retryable && attempts < self.opts.max_retries {
                        attempts += 1;
                        self.retries += 1;
                        continue;
                    }
                    self.ctrl
                        .fail(RuntimeError::TileFailed { tile, rep, payload });
                    return false;
                }
            }
        }
    }

    /// One attempt at a tile.  Returns `false` if a cancellation poll
    /// stopped the kernel loop mid-tile.
    fn run_tile_once(&mut self, tile: usize, rep: u64) -> bool {
        let track = rep == 0 && self.scratch.is_some();
        let t0 = Instant::now();
        let work = &self.exec.work[tile];
        let kernel = &self.exec.kernel;
        let store = self.store;
        #[cfg(feature = "chaos")]
        if let Some(inj) = &self.opts.fault_injector {
            inj.before_tile(tile, rep);
        }
        let mut local = 0u64;
        let mut local_polls = 0u64;
        let ctrl = self.ctrl;
        let relaxed = self.exec.relaxed_stores;
        let completed = if track {
            // Touches repeat identically every rep; track only the
            // first.
            let sc = self
                .scratch
                .as_mut()
                .expect("track implies scratch is present");
            sc.clear();
            work.try_for_each_point(|i| {
                kernel.for_each_access(i, |e, _w| sc.insert(e));
                if relaxed {
                    kernel.execute_relaxed(i, store);
                } else {
                    kernel.execute(i, store);
                }
                local += 1;
                if local.is_multiple_of(POLL_INTERVAL) {
                    local_polls += 1;
                    ctrl.keep_going(local_polls.is_multiple_of(DEADLINE_POLL_STRIDE))
                } else {
                    true
                }
            })
        } else if let Work::Clipped { bx, domain, .. } = work {
            // Skewed fast path: whole clipped rows at a time, the inner
            // loop a pointer bump per reference.  Rows are chunked to
            // POLL_INTERVAL so cancellation latency matches the
            // point-wise paths.
            domain.for_each_row(bx, |j, lo, hi| {
                let mut x = lo;
                loop {
                    let end = x.saturating_add(POLL_INTERVAL as i64 - 1).min(hi);
                    if relaxed {
                        kernel.execute_row_relaxed(j, x, end, store);
                    } else {
                        kernel.execute_row(j, x, end, store);
                    }
                    local += (end - x) as u64 + 1;
                    local_polls += 1;
                    if !ctrl.keep_going(local_polls.is_multiple_of(DEADLINE_POLL_STRIDE)) {
                        return false;
                    }
                    if end == hi {
                        return true;
                    }
                    x = end + 1;
                }
            })
        } else if relaxed {
            work.try_for_each_point(|i| {
                kernel.execute_relaxed(i, store);
                local += 1;
                if local.is_multiple_of(POLL_INTERVAL) {
                    local_polls += 1;
                    ctrl.keep_going(local_polls.is_multiple_of(DEADLINE_POLL_STRIDE))
                } else {
                    true
                }
            })
        } else {
            work.try_for_each_point(|i| {
                kernel.execute(i, store);
                local += 1;
                if local.is_multiple_of(POLL_INTERVAL) {
                    local_polls += 1;
                    ctrl.keep_going(local_polls.is_multiple_of(DEADLINE_POLL_STRIDE))
                } else {
                    true
                }
            })
        };
        self.polls += local_polls;
        let dt = t0.elapsed();
        self.busy += dt;
        if !completed {
            return false;
        }
        #[cfg(feature = "chaos")]
        if let Some(inj) = &self.opts.fault_injector {
            inj.after_tile(tile, rep, store);
        }
        self.iterations += work.iterations();
        if track {
            let lines = self.scratch.as_ref().map(TouchSet::count);
            if let (Some(tt), Some(sc)) = (self.thread_touch.as_mut(), self.scratch.as_ref()) {
                tt.merge(sc);
            }
            self.tile_metrics.push(TileMetrics {
                tile,
                thread: self.thread,
                iterations: work.iterations(),
                distinct_lines: lines,
                busy: dt,
            });
        } else if rep == 0 {
            // Touch tracking off: still record the first-rep tile row.
            self.tile_metrics.push(TileMetrics {
                tile,
                thread: self.thread,
                iterations: work.iterations(),
                distinct_lines: None,
                busy: dt,
            });
        } else if let Some(m) = self.tile_metrics.iter_mut().find(|m| m.tile == tile) {
            m.busy += dt;
        }
        true
    }

    fn finish(self) -> ThreadOut {
        let exact = self.thread_touch.as_ref().is_none_or(TouchSet::is_exact);
        ThreadOut {
            metrics: ThreadMetrics {
                thread: self.thread,
                tiles_run: self.tile_metrics.len(),
                iterations: self.iterations,
                distinct_lines: self.thread_touch.as_ref().map(TouchSet::count),
                busy: self.busy,
                barrier_wait: self.barrier_wait,
            },
            tiles: self.tile_metrics,
            rep_waits: self.rep_waits,
            exact,
            retries: self.retries,
            polls: self.polls,
        }
    }
}

/// Best-effort extraction of a panic payload into a printable string.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// The conservative *syntactic* idempotence rule behind
/// [`ExecOptions::max_retries`] (documented in DESIGN.md "Failure
/// model"): every statement is a plain (non-accumulate) assign, and no
/// right-hand side reads an array that any statement writes.
///
/// Array-name granularity makes this a sound under-approximation of the
/// certifier's element-precise dataflow idempotence: whenever this rule
/// accepts a nest, the certifier's verdict is also `idempotent` (the
/// converse fails on nests like `A[i] = A[i+N]` whose read and write
/// regions the bounds keep apart).  Public so the property test pinning
/// that containment can call both sides.
pub fn syntactic_retry_safe(nest: &LoopNest) -> bool {
    let written: std::collections::HashSet<&str> =
        nest.body.iter().map(|st| st.lhs.array.as_str()).collect();
    nest.body.iter().all(|st| {
        st.lhs.kind != AccessKind::Accumulate
            && st
                .rhs
                .iter()
                .all(|r| r.kind != AccessKind::Accumulate && !written.contains(r.array.as_str()))
    })
}

/// Result of [`Executor::verify`].
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Metrics from the parallel run.
    pub report: RunReport,
    /// Whether the parallel result equals the sequential reference
    /// bit for bit.
    pub matches_reference: bool,
}

enum RefMode {
    Assign,
    Accumulate,
}

/// A statement pre-classified for the interpreted reference path, using
/// the same accumulate rule as the kernel compiler but none of its code.
struct RefStmt<'a> {
    stmt: &'a alp_loopir::Statement,
    mode: RefMode,
    sources: Vec<&'a alp_loopir::ArrayRef>,
}

impl<'a> RefStmt<'a> {
    fn new(st: &'a alp_loopir::Statement) -> Self {
        let is_self = |r: &alp_loopir::ArrayRef| {
            r.kind == AccessKind::Accumulate
                && r.array == st.lhs.array
                && r.subscripts == st.lhs.subscripts
        };
        if st.lhs.kind == AccessKind::Accumulate
            && st.rhs.iter().filter(|r| is_self(r)).count() == 1
        {
            RefStmt {
                stmt: st,
                mode: RefMode::Accumulate,
                sources: st.rhs.iter().filter(|r| !is_self(r)).collect(),
            }
        } else {
            RefStmt {
                stmt: st,
                mode: RefMode::Assign,
                sources: st.rhs.iter().collect(),
            }
        }
    }
}

fn reps(nest: &LoopNest) -> Result<u64, RuntimeError> {
    u64::try_from(nest.seq_repetitions())
        .map_err(|_| RuntimeError::BadGrid("sequential repetition count overflows u64".into()))
}
