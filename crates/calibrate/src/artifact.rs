//! The calibration artifact: fitted coefficients as a versioned,
//! byte-deterministic JSON file, reusable across `alp-cli plan` runs on
//! the same machine.

use crate::{CalibrateError, LatencyModel};
use alp_linalg::Rat;
use alp_plan::json::{self, Json};

/// Newest calibration schema version this build reads and writes.
pub const ARTIFACT_VERSION: u32 = 1;

/// A fitted latency model plus the probe provenance it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Calibration {
    /// The fitted coefficients.
    pub model: LatencyModel,
    /// OS threads the probe ran with.
    pub threads: usize,
    /// Timed trials per probed grid.
    pub trials: usize,
}

fn rat_str(r: &Rat) -> String {
    format!("{}/{}", r.num(), r.den())
}

fn parse_rat(s: &str) -> Result<Rat, CalibrateError> {
    let (num, den) = s
        .split_once('/')
        .ok_or_else(|| CalibrateError::Schema(format!("`{s}` is not a num/den rational")))?;
    let num: i128 = num
        .parse()
        .map_err(|_| CalibrateError::Schema(format!("bad rational numerator `{num}`")))?;
    let den: i128 = den
        .parse()
        .map_err(|_| CalibrateError::Schema(format!("bad rational denominator `{den}`")))?;
    if den == 0 {
        return Err(CalibrateError::Schema(
            "rational with zero denominator".into(),
        ));
    }
    Ok(Rat::new(num, den))
}

fn rat_field(v: &Json, key: &str) -> Result<Rat, CalibrateError> {
    match v.get(key) {
        Some(Json::Str(s)) => parse_rat(s),
        Some(_) => Err(CalibrateError::Schema(format!(
            "`{key}` must be a num/den rational string"
        ))),
        None => Err(CalibrateError::Schema(format!("missing field `{key}`"))),
    }
}

fn count_field(v: &Json, key: &str) -> Result<u64, CalibrateError> {
    v.get(key)
        .and_then(Json::as_int)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| CalibrateError::Schema(format!("`{key}` must be a count")))
}

impl Calibration {
    /// Canonical encoding — fixed field order, two-space indent, exact
    /// rationals only; encoding the same calibration twice is
    /// byte-identical.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |key: &str, val: String| {
            out.push_str("  ");
            json::write_string(&mut out, key);
            out.push_str(": ");
            out.push_str(&val);
            out.push_str(",\n");
        };
        field("alp-calibration", ARTIFACT_VERSION.to_string());
        let mut rat = |key: &str, r: &Rat| {
            let mut s = String::new();
            json::write_string(&mut s, &rat_str(r));
            field(key, s);
        };
        rat("per_tile_ns", &self.model.per_tile_ns);
        rat("per_line_ns", &self.model.per_line_ns);
        rat("per_span_line_ns", &self.model.per_span_line_ns);
        rat("per_iter_ns", &self.model.per_iter_ns);
        rat("per_rep_ns", &self.model.per_rep_ns);
        field("samples", self.model.samples.to_string());
        field("threads", self.threads.to_string());
        field("trials", self.trials.to_string());
        // Drop the trailing comma, close the object.
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }

    /// Decode a calibration artifact, rejecting unknown versions and
    /// malformed coefficients with a diagnostic.
    pub fn from_json_str(s: &str) -> Result<Calibration, CalibrateError> {
        let v = json::parse(s)?;
        let version = v
            .get("alp-calibration")
            .and_then(Json::as_int)
            .ok_or_else(|| {
                CalibrateError::Schema("missing `alp-calibration` schema version field".into())
            })?;
        if version != ARTIFACT_VERSION as i128 {
            return Err(CalibrateError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        Ok(Calibration {
            model: LatencyModel {
                per_tile_ns: rat_field(&v, "per_tile_ns")?,
                per_line_ns: rat_field(&v, "per_line_ns")?,
                per_span_line_ns: rat_field(&v, "per_span_line_ns")?,
                per_iter_ns: rat_field(&v, "per_iter_ns")?,
                per_rep_ns: rat_field(&v, "per_rep_ns")?,
                samples: count_field(&v, "samples")?,
            },
            threads: count_field(&v, "threads")? as usize,
            trials: count_field(&v, "trials")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Calibration {
        Calibration {
            model: LatencyModel {
                per_tile_ns: Rat::new(1507, 1000),
                per_line_ns: Rat::new(21, 1000),
                per_span_line_ns: Rat::new(3, 1000),
                per_iter_ns: Rat::new(911, 1000),
                per_rep_ns: Rat::int(42_000),
                samples: 36,
            },
            threads: 8,
            trials: 5,
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let c = sample();
        let text = c.to_json_string();
        let back = Calibration::from_json_str(&text).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let text = sample()
            .to_json_string()
            .replace("\"alp-calibration\": 1", "\"alp-calibration\": 9");
        assert!(matches!(
            Calibration::from_json_str(&text),
            Err(CalibrateError::UnsupportedVersion {
                found: 9,
                supported: 1
            })
        ));
    }

    #[test]
    fn malformed_fields_are_rejected() {
        let good = sample().to_json_string();
        for (from, to) in [
            ("\"per_line_ns\": \"21/1000\"", "\"per_line_ns\": \"fast\""),
            ("\"per_rep_ns\": \"42000/1\"", "\"per_rep_ns\": \"1/0\""),
            ("\"samples\": 36", "\"samples\": -1"),
            ("\"per_tile_ns\": \"1507/1000\"", "\"per_tile_ns\": 2"),
        ] {
            let bad = good.replace(from, to);
            assert_ne!(bad, good, "replacement `{from}` did not apply");
            assert!(
                matches!(
                    Calibration::from_json_str(&bad),
                    Err(CalibrateError::Schema(_))
                ),
                "`{to}` was not rejected"
            );
        }
        assert!(matches!(
            Calibration::from_json_str("{ \"alp-calibration\": "),
            Err(CalibrateError::Json(_))
        ));
    }
}
