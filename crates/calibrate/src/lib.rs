//! # alp-calibrate — measured-latency calibration for the partitioner
//!
//! The Theorem-4 objective ranks candidate tilings by the cumulative
//! footprint of one tile — a pure *capacity* proxy.  On real machines
//! that proxy can invert: Example 2's column strips minimize distinct
//! lines but spread each tile's accesses across a huge address
//! envelope, and the measured wall time favors the blocked tiling the
//! model ranks second.  This crate closes the loop:
//!
//! 1. **Probe** ([`probe_nest`]) — run the candidate tilings of a nest
//!    on the actual machine, collecting per-tile busy times, measured
//!    distinct-line counts, and per-repetition barrier waits from the
//!    executor's [`RunReport`](alp_runtime::RunReport).
//! 2. **Fit** ([`fit`]) — least-squares the per-tile latency
//!    `busy ≈ a + b·lines + s·span + d·iters` (coefficients clamped
//!    non-negative, snapped to exact rationals) and average the barrier
//!    cost into a per-repetition coefficient `c`.
//! 3. **Re-rank** ([`rank_candidates`], [`choose_calibrated`]) — score
//!    every feasible processor-grid factorization with the hybrid cost
//!    `a·tiles + reps·(b·lines + s·span + d·iters) + c·reps`
//!    and pick the cheapest, breaking ties toward the analytic choice.
//!
//! The fitted coefficients serialize to a versioned artifact
//! ([`Calibration`]) and travel inside
//! [`PartitionPlan`](alp_plan::PartitionPlan) provenance as
//! [`LatencyCoefficients`](alp_plan::LatencyCoefficients), so a plan
//! records *which* objective chose its tiling.
//!
//! The span term is what breaks the Example-2 tie: with the nest and
//! processor count fixed, `tiles` and `reps` are constant across
//! candidate grids and strips genuinely touch *fewer* distinct lines
//! than blocks — but their per-tile address envelope (`span`) is an
//! order of magnitude wider, which is exactly what the measured busy
//! times punish.

#![warn(missing_docs)]

mod artifact;
mod features;
mod fit;
mod probe;
mod rank;

pub use artifact::{Calibration, ARTIFACT_VERSION};
pub use features::{candidate_grids, grid_features, skewed_grid_features, GridFeatures};
pub use fit::{fit, LatencyModel, TileSample};
pub use probe::{fit_nest, probe_nest, probe_skewed, ProbeConfig, ProbeReport};
pub use rank::{
    choose_calibrated, rank_candidates, rank_skewed, ranking_is_degenerate,
    skewed_ranking_is_degenerate, RankedCandidate, RankedSkewed,
};

/// Everything that can go wrong probing, fitting, or (de)serializing a
/// calibration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrateError {
    /// The calibration file is not well-formed JSON.
    Json(alp_plan::JsonError),
    /// Well-formed JSON that does not match the calibration schema.
    Schema(String),
    /// The calibration file declares a schema version this build cannot
    /// read.
    UnsupportedVersion {
        /// Version found in the file.
        found: i128,
        /// Newest version this build understands.
        supported: u32,
    },
    /// Too few probe samples to fit the latency model.
    NotEnoughSamples {
        /// Samples collected.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The probe data cannot identify the coefficients (e.g. every
    /// candidate tiling produced identical features).
    Degenerate(String),
    /// Tile enumeration / plan plumbing failed.
    Plan(alp_plan::PlanError),
    /// A probe run failed in the executor.
    Runtime(String),
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::Json(e) => write!(f, "calibration is not valid JSON: {e}"),
            CalibrateError::Schema(msg) => {
                write!(f, "calibration does not match the schema: {msg}")
            }
            CalibrateError::UnsupportedVersion { found, supported } => write!(
                f,
                "calibration schema version {found} is not supported (this build reads \
                 version {supported}); re-run `alp-cli calibrate`"
            ),
            CalibrateError::NotEnoughSamples { got, need } => write!(
                f,
                "only {got} probe samples collected, need at least {need}; raise --trials \
                 or probe a larger nest"
            ),
            CalibrateError::Degenerate(msg) => {
                write!(f, "probe data cannot identify the latency model: {msg}")
            }
            CalibrateError::Plan(e) => write!(f, "{e}"),
            CalibrateError::Runtime(msg) => write!(f, "probe run failed: {msg}"),
        }
    }
}

impl std::error::Error for CalibrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrateError::Json(e) => Some(e),
            CalibrateError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alp_plan::JsonError> for CalibrateError {
    fn from(e: alp_plan::JsonError) -> Self {
        CalibrateError::Json(e)
    }
}

impl From<alp_plan::PlanError> for CalibrateError {
    fn from(e: alp_plan::PlanError) -> Self {
        CalibrateError::Plan(e)
    }
}
