//! Re-ranking the candidate tilings with the hybrid cost model.

use crate::features::skewed_grid_features;
use crate::{candidate_grids, grid_features, CalibrateError, GridFeatures, LatencyModel};
use alp_footprint::CostModel;
use alp_linalg::Rat;
use alp_loopir::LoopNest;
use alp_partition::RectPartition;
use alp_plan::SkewedCandidate;

/// One candidate tiling scored under both objectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedCandidate {
    /// The hybrid-cost features (grid, extents, lines, span, …).
    pub features: GridFeatures,
    /// The analytic Theorem-4 objective (worst-tile footprint).
    pub analytic_cost: Rat,
    /// The calibrated hybrid cost, in model nanoseconds.
    pub hybrid_cost: Rat,
}

/// True when the calibration carries no grid-discriminating signal:
/// every candidate lands on the exact same hybrid cost.  For a fixed
/// processor count the per-tile/per-iter/per-rep terms are constant
/// across factorizations, so this happens precisely when the fitted
/// per-line *and* per-span coefficients are zero — the model then
/// ranks nothing, and any "calibrated" order out of it is an artifact
/// of sort stability rather than a prediction.
pub fn ranking_is_degenerate(ranked: &[RankedCandidate]) -> bool {
    ranked.len() > 1
        && ranked
            .windows(2)
            .all(|w| w[0].hybrid_cost == w[1].hybrid_cost)
}

/// Score every feasible processor-grid factorization of `p` under the
/// calibrated model, best first.  A degenerate calibration (all hybrid
/// costs tied — see [`ranking_is_degenerate`]) falls back to the
/// analytic Theorem-4 order *explicitly*, and exact hybrid ties within
/// a live calibration break the same way, so a no-signal model
/// reproduces the analytic ranking instead of scrambling it.
pub fn rank_candidates(
    nest: &LoopNest,
    model: &CostModel,
    latency: &LatencyModel,
    p: i128,
    line_size: u64,
) -> Result<Vec<RankedCandidate>, CalibrateError> {
    let grids = candidate_grids(nest, p);
    if grids.is_empty() {
        return Err(CalibrateError::Plan(alp_plan::PlanError::Infeasible(
            format!("no feasible factorization of {p} processors for this nest"),
        )));
    }
    let mut out = Vec::with_capacity(grids.len());
    for grid in grids {
        let features = grid_features(nest, model, &grid, line_size)?;
        let analytic_cost = features.lines;
        let hybrid_cost = latency.hybrid_cost(&features);
        out.push(RankedCandidate {
            features,
            analytic_cost,
            hybrid_cost,
        });
    }
    if ranking_is_degenerate(&out) {
        out.sort_by_key(|c| c.analytic_cost);
    } else {
        out.sort_by(|a, b| {
            a.hybrid_cost
                .cmp(&b.hybrid_cost)
                .then_with(|| a.analytic_cost.cmp(&b.analytic_cost))
        });
    }
    Ok(out)
}

/// One skewed candidate scored under both objectives, remembering which
/// entry of the caller's candidate slice it describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedSkewed {
    /// Index into the candidate slice passed to [`rank_skewed`].
    pub index: usize,
    /// The hybrid-cost features over the transformed tiles.
    pub features: GridFeatures,
    /// The parallelepiped Eq.-2 analytic cost.
    pub analytic_cost: Rat,
    /// The calibrated hybrid cost, in model nanoseconds.
    pub hybrid_cost: Rat,
}

/// True when the calibration cannot tell the skewed candidates apart
/// (all hybrid costs tied) — the skewed analogue of
/// [`ranking_is_degenerate`].
pub fn skewed_ranking_is_degenerate(ranked: &[RankedSkewed]) -> bool {
    ranked.len() > 1
        && ranked
            .windows(2)
            .all(|w| w[0].hybrid_cost == w[1].hybrid_cost)
}

/// Score skewed parallelepiped candidates under the calibrated hybrid
/// cost, best first.  Candidates whose feature extraction fails (e.g. a
/// grid whose clipping empties every tile) are dropped rather than
/// failing the whole ranking.  A degenerate calibration falls back to
/// the analytic parallelepiped order, exactly as the rectangular
/// ranking does, so callers can report *which* model made the choice
/// via [`skewed_ranking_is_degenerate`].
pub fn rank_skewed(
    nest: &LoopNest,
    latency: &LatencyModel,
    candidates: &[SkewedCandidate],
    line_size: u64,
) -> Result<Vec<RankedSkewed>, CalibrateError> {
    let mut out = Vec::with_capacity(candidates.len());
    for (index, cand) in candidates.iter().enumerate() {
        let Ok(features) = skewed_grid_features(nest, cand, line_size) else {
            continue;
        };
        let analytic_cost = features.lines;
        let hybrid_cost = latency.hybrid_cost(&features);
        out.push(RankedSkewed {
            index,
            features,
            analytic_cost,
            hybrid_cost,
        });
    }
    if out.is_empty() {
        return Err(CalibrateError::Degenerate(
            "no skewed candidate produced usable features".into(),
        ));
    }
    if skewed_ranking_is_degenerate(&out) {
        out.sort_by(|a, b| {
            a.analytic_cost
                .cmp(&b.analytic_cost)
                .then_with(|| a.index.cmp(&b.index))
        });
    } else {
        out.sort_by(|a, b| {
            a.hybrid_cost
                .cmp(&b.hybrid_cost)
                .then_with(|| a.analytic_cost.cmp(&b.analytic_cost))
                .then_with(|| a.index.cmp(&b.index))
        });
    }
    Ok(out)
}

/// The calibrated partitioner: like
/// [`partition_rect`](alp_partition::partition_rect) but ranked by the
/// hybrid cost.  The returned partition carries the *analytic* cost of
/// the chosen grid, so it stays comparable with uncalibrated plans.
/// With a degenerate calibration the ranking is the analytic order, so
/// the choice is exactly the analytic partitioner's.
pub fn choose_calibrated(
    nest: &LoopNest,
    model: &CostModel,
    latency: &LatencyModel,
    p: i128,
    line_size: u64,
) -> Result<RectPartition, CalibrateError> {
    let ranked = rank_candidates(nest, model, latency, p, line_size)?;
    let best = &ranked[0];
    Ok(RectPartition {
        proc_grid: best.features.grid.clone(),
        tile_extents: best.features.tile_extents.clone(),
        cost: best.analytic_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;
    use alp_partition::partition_rect;

    fn example2() -> LoopNest {
        parse(
            "doall (i, 101, 612) { doall (j, 1, 512) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap()
    }

    fn model_with(b: (i128, i128), s: (i128, i128)) -> LatencyModel {
        LatencyModel {
            per_tile_ns: Rat::int(1500),
            per_line_ns: Rat::new(b.0, b.1),
            per_span_line_ns: Rat::new(s.0, s.1),
            per_iter_ns: Rat::new(3, 4),
            per_rep_ns: Rat::int(40_000),
            samples: 32,
        }
    }

    #[test]
    fn span_term_resolves_the_example2_inversion() {
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        // The analytic objective picks strips.
        assert_eq!(partition_rect(&nest, 16).proc_grid, vec![1, 16]);
        // A calibration with a meaningful span coefficient flips the
        // choice to blocks — matching what the machine measures.
        let latency = model_with((2, 1), (1, 10));
        let part = choose_calibrated(&nest, &cost, &latency, 16, 1).unwrap();
        assert_eq!(part.proc_grid, vec![4, 4]);
        // And the recorded cost is the analytic one for that grid.
        assert_eq!(part.cost, cost.cost_rect(&part.tile_extents));
    }

    #[test]
    fn zero_span_coefficient_reproduces_the_analytic_choice() {
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        let latency = model_with((2, 1), (0, 1));
        let part = choose_calibrated(&nest, &cost, &latency, 16, 1).unwrap();
        assert_eq!(part.proc_grid, partition_rect(&nest, 16).proc_grid);
    }

    #[test]
    fn all_zero_model_falls_back_to_analytic_order() {
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        let latency = LatencyModel {
            per_tile_ns: Rat::ZERO,
            per_line_ns: Rat::ZERO,
            per_span_line_ns: Rat::ZERO,
            per_iter_ns: Rat::ZERO,
            per_rep_ns: Rat::ZERO,
            samples: 0,
        };
        let ranked = rank_candidates(&nest, &cost, &latency, 16, 1).unwrap();
        assert_eq!(ranked[0].features.grid, vec![1, 16]);
        assert!(
            ranking_is_degenerate(&ranked),
            "all-zero model is no-signal"
        );
    }

    #[test]
    fn zero_line_and_span_coefficients_are_detected_as_degenerate() {
        // Per-tile / per-iter / per-rep terms are constant across the
        // factorizations of a fixed p, so zeroing just the line and
        // span coefficients leaves every hybrid cost tied at the same
        // nonzero value.  The ranking must say so and must equal the
        // analytic order.
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        let latency = model_with((0, 1), (0, 1));
        let ranked = rank_candidates(&nest, &cost, &latency, 16, 1).unwrap();
        assert!(ranked[0].hybrid_cost > Rat::ZERO, "tied but nonzero");
        assert!(ranking_is_degenerate(&ranked));
        for w in ranked.windows(2) {
            assert_eq!(w[0].hybrid_cost, w[1].hybrid_cost);
            assert!(w[0].analytic_cost <= w[1].analytic_cost, "analytic order");
        }
        let part = choose_calibrated(&nest, &cost, &latency, 16, 1).unwrap();
        assert_eq!(part.proc_grid, partition_rect(&nest, 16).proc_grid);
    }

    #[test]
    fn live_calibration_is_not_degenerate() {
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        let ranked = rank_candidates(&nest, &cost, &model_with((2, 1), (1, 10)), 16, 1).unwrap();
        assert!(!ranking_is_degenerate(&ranked));
    }

    #[test]
    fn skewed_candidates_rank_under_the_hybrid_cost() {
        let nest = example2();
        let cands =
            alp_plan::skewed_candidates(&nest, 16, &alp_partition::ParaSearchConfig::default())
                .unwrap();
        assert!(!cands.is_empty());
        let ranked = rank_skewed(&nest, &model_with((2, 1), (1, 10)), &cands, 1).unwrap();
        assert!(!skewed_ranking_is_degenerate(&ranked));
        for w in ranked.windows(2) {
            assert!(w[0].hybrid_cost <= w[1].hybrid_cost);
        }
        // Every ranked entry points back into the candidate slice and
        // carries that candidate's analytic parallelepiped cost.
        for r in &ranked {
            assert!(r.index < cands.len());
            assert_eq!(r.analytic_cost, Rat::int(cands[r.index].analytic_cost));
        }
    }

    #[test]
    fn degenerate_calibration_ranks_skewed_candidates_analytically() {
        let nest = example2();
        let cands =
            alp_plan::skewed_candidates(&nest, 16, &alp_partition::ParaSearchConfig::default())
                .unwrap();
        // Unlike rectangular factorizations of a fixed p, skewed
        // candidates differ in tile count and worst-tile iterations, so
        // even the per-tile/per-iter terms discriminate; only the
        // all-zero model is truly signal-free.
        let zero = LatencyModel {
            per_tile_ns: Rat::ZERO,
            per_line_ns: Rat::ZERO,
            per_span_line_ns: Rat::ZERO,
            per_iter_ns: Rat::ZERO,
            per_rep_ns: Rat::ZERO,
            samples: 0,
        };
        let ranked = rank_skewed(&nest, &zero, &cands, 1).unwrap();
        assert!(skewed_ranking_is_degenerate(&ranked));
        for w in ranked.windows(2) {
            assert!(w[0].analytic_cost <= w[1].analytic_cost);
        }
    }

    #[test]
    fn ranking_is_exhaustive_over_feasible_grids() {
        let nest = example2();
        let cost = CostModel::from_nest(&nest);
        let latency = model_with((2, 1), (1, 10));
        let ranked = rank_candidates(&nest, &cost, &latency, 16, 1).unwrap();
        assert_eq!(ranked.len(), candidate_grids(&nest, 16).len());
        for w in ranked.windows(2) {
            assert!(w[0].hybrid_cost <= w[1].hybrid_cost);
        }
    }
}
