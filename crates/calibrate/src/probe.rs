//! Probe runs: execute candidate tilings on the real machine and turn
//! the executor's reports into fit samples.

use crate::features::per_tile_features;
use crate::{candidate_grids, fit, CalibrateError, LatencyModel, TileSample};
use alp_loopir::LoopNest;
use alp_runtime::{ExecOptions, Executor, Schedule};
use std::time::Duration;

/// Knobs for a calibration probe.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// OS threads per run (0 = one per tile).
    pub threads: usize,
    /// Timed trials per candidate grid; per-tile busy times keep the
    /// minimum across trials (noise floors, not noise averages).
    pub trials: usize,
    /// Untimed warmup runs per candidate grid (page faults, frequency
    /// ramp).
    pub warmup: usize,
    /// Elements per cache line for touch counting and span features.
    pub line_size: u64,
    /// Seed for the probe arrays.
    pub seed: u64,
    /// Cap on candidate grids probed per nest (evenly subsampled); the
    /// fit needs diverse shapes, not every factorization.
    pub max_grids: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            threads: 4,
            trials: 3,
            warmup: 1,
            line_size: 1,
            seed: 42,
            max_grids: 8,
        }
    }
}

/// What a probe produced: fit samples plus the averaged critical-path
/// barrier wait.
#[derive(Debug, Clone, Default)]
pub struct ProbeReport {
    /// One sample per (probed grid, non-empty tile).
    pub samples: Vec<TileSample>,
    /// Mean per-repetition critical-path barrier wait, nanoseconds.
    pub barrier_ns: f64,
    /// Timed runs executed.
    pub runs: usize,
}

impl ProbeReport {
    /// Merge another probe's observations into this one (barrier means
    /// are combined weighted by run count).
    pub fn merge(&mut self, other: ProbeReport) {
        let total = self.runs + other.runs;
        if total > 0 {
            self.barrier_ns = (self.barrier_ns * self.runs as f64
                + other.barrier_ns * other.runs as f64)
                / total as f64;
        }
        self.runs = total;
        self.samples.extend(other.samples);
    }
}

fn runtime_err(e: alp_runtime::RuntimeError) -> CalibrateError {
    CalibrateError::Runtime(e.to_string())
}

/// Probe one nest: run up to `max_grids` feasible tilings of `p`
/// processors and extract per-tile samples.
pub fn probe_nest(
    nest: &LoopNest,
    p: i128,
    cfg: &ProbeConfig,
) -> Result<ProbeReport, CalibrateError> {
    let grids = candidate_grids(nest, p);
    if grids.is_empty() {
        return Err(CalibrateError::Plan(alp_plan::PlanError::Infeasible(
            format!("no feasible factorization of {p} processors for this nest"),
        )));
    }
    // Evenly subsample so the probed set still spans the shape range
    // (strips at both ends, blocks in the middle).
    let selected: Vec<&Vec<i128>> = if grids.len() <= cfg.max_grids.max(1) {
        grids.iter().collect()
    } else {
        let n = cfg.max_grids.max(1);
        (0..n)
            .map(|k| &grids[k * (grids.len() - 1) / (n - 1).max(1)])
            .collect()
    };

    let mut report = ProbeReport::default();
    for grid in selected {
        let exec = Executor::from_grid(nest, grid).map_err(runtime_err)?;
        let store = exec.seeded_store(cfg.seed);
        let mut opts = ExecOptions {
            threads: cfg.threads,
            schedule: Schedule::Static,
            line_size: cfg.line_size,
            track_touches: true,
            ..ExecOptions::default()
        };
        // One tracked run for the measured distinct-line counts…
        let touched = exec.run(&store, &opts).map_err(runtime_err)?;
        // …then timed runs with tracking off, keeping each tile's
        // fastest observation.
        opts.track_touches = false;
        let tiles = touched.per_tile.len();
        let mut best_busy: Vec<Option<Duration>> = vec![None; tiles];
        let mut barrier_ns_sum = 0.0f64;
        let mut timed = 0usize;
        for round in 0..cfg.warmup + cfg.trials.max(1) {
            let run = exec.run(&store, &opts).map_err(runtime_err)?;
            if round < cfg.warmup {
                continue;
            }
            timed += 1;
            if let Some(w) = run.mean_barrier_wait() {
                barrier_ns_sum += w.as_secs_f64() * 1e9;
            }
            for t in &run.per_tile {
                let slot = &mut best_busy[t.tile];
                *slot = Some(slot.map_or(t.busy, |b| b.min(t.busy)));
            }
        }
        let reps = touched.repetitions.max(1) as f64;
        let spans = per_tile_features(nest, grid, cfg.line_size)?;
        for t in &touched.per_tile {
            let Some(Some((span, iters))) = spans.get(t.tile) else {
                continue;
            };
            let Some(busy) = best_busy[t.tile] else {
                continue;
            };
            if *iters == 0 {
                continue;
            }
            let lines = t.distinct_lines.map(|n| n as f64).unwrap_or(*span as f64);
            report.samples.push(TileSample {
                busy_ns: busy.as_secs_f64() * 1e9 / reps,
                lines,
                span_lines: *span as f64,
                iters: *iters as f64,
            });
        }
        report.merge(ProbeReport {
            samples: Vec::new(),
            barrier_ns: if timed > 0 {
                barrier_ns_sum / timed as f64
            } else {
                0.0
            },
            runs: timed,
        });
    }
    Ok(report)
}

/// Probe one nest's **skewed** candidates: run up to `max_grids`
/// parallelepiped tilings natively (rectangular tiles in the
/// transformed `j = i·U` space) and extract per-tile samples labeled
/// with the skewed span/iteration features.  Pooled with rectangular
/// probes, these let one fitted model rank both candidate classes.
pub fn probe_skewed(
    nest: &LoopNest,
    p: i128,
    cfg: &ProbeConfig,
) -> Result<ProbeReport, CalibrateError> {
    let candidates =
        alp_plan::skewed_candidates(nest, p, &alp_partition::ParaSearchConfig::default())
            .map_err(CalibrateError::Plan)?;
    if candidates.is_empty() {
        return Err(CalibrateError::Plan(alp_plan::PlanError::Infeasible(
            "nest has no skewed candidate bases".into(),
        )));
    }
    let selected: Vec<&alp_plan::SkewedCandidate> =
        candidates.iter().take(cfg.max_grids.max(1)).collect();

    let mut report = ProbeReport::default();
    for cand in selected {
        let exec =
            Executor::from_transformed(nest, &cand.transform, &cand.grid).map_err(runtime_err)?;
        let store = exec.seeded_store(cfg.seed);
        let mut opts = ExecOptions {
            threads: cfg.threads,
            schedule: Schedule::Static,
            line_size: cfg.line_size,
            track_touches: true,
            ..ExecOptions::default()
        };
        let touched = exec.run(&store, &opts).map_err(runtime_err)?;
        opts.track_touches = false;
        let tiles = touched.per_tile.len();
        let mut best_busy: Vec<Option<Duration>> = vec![None; tiles];
        let mut barrier_ns_sum = 0.0f64;
        let mut timed = 0usize;
        for round in 0..cfg.warmup + cfg.trials.max(1) {
            let run = exec.run(&store, &opts).map_err(runtime_err)?;
            if round < cfg.warmup {
                continue;
            }
            timed += 1;
            if let Some(w) = run.mean_barrier_wait() {
                barrier_ns_sum += w.as_secs_f64() * 1e9;
            }
            for t in &run.per_tile {
                let slot = &mut best_busy[t.tile];
                *slot = Some(slot.map_or(t.busy, |b| b.min(t.busy)));
            }
        }
        let reps = touched.repetitions.max(1) as f64;
        let spans = crate::features::per_tile_skewed_features(nest, cand, cfg.line_size)?;
        for t in &touched.per_tile {
            let Some(Some((span, iters))) = spans.get(t.tile) else {
                continue;
            };
            let Some(busy) = best_busy[t.tile] else {
                continue;
            };
            if *iters == 0 {
                continue;
            }
            let lines = t.distinct_lines.map(|n| n as f64).unwrap_or(*span as f64);
            report.samples.push(TileSample {
                busy_ns: busy.as_secs_f64() * 1e9 / reps,
                lines,
                span_lines: *span as f64,
                iters: *iters as f64,
            });
        }
        report.merge(ProbeReport {
            samples: Vec::new(),
            barrier_ns: if timed > 0 {
                barrier_ns_sum / timed as f64
            } else {
                0.0
            },
            runs: timed,
        });
    }
    Ok(report)
}

/// Probe several nests and fit one latency model from the pooled
/// samples — the one-call entry `alp-cli calibrate` uses.
pub fn fit_nest(
    nests: &[(&LoopNest, i128)],
    cfg: &ProbeConfig,
) -> Result<LatencyModel, CalibrateError> {
    let mut pooled = ProbeReport::default();
    for &(nest, p) in nests {
        pooled.merge(probe_nest(nest, p, cfg)?);
    }
    fit(&pooled.samples, pooled.barrier_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn quick_cfg() -> ProbeConfig {
        ProbeConfig {
            threads: 2,
            trials: 1,
            warmup: 0,
            max_grids: 4,
            ..ProbeConfig::default()
        }
    }

    #[test]
    fn probe_produces_labeled_samples() {
        let nest =
            parse("doall (i, 0, 31) { doall (j, 0, 31) { A[i,j] = B[i,j] + B[i+1,j]; } }").unwrap();
        let report = probe_nest(&nest, 4, &quick_cfg()).unwrap();
        assert!(report.runs >= 1);
        assert!(!report.samples.is_empty());
        for s in &report.samples {
            assert!(s.busy_ns >= 0.0);
            assert!(s.lines > 0.0);
            assert!(s.span_lines > 0.0);
            assert!(s.iters > 0.0);
        }
    }

    #[test]
    fn skewed_probe_produces_labeled_samples() {
        // The Example-2 shape at probe scale: skewed candidates exist
        // and the transformed executor runs them natively.
        let nest = parse(
            "doall (i, 101, 164) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap();
        let report = probe_skewed(&nest, 4, &quick_cfg()).unwrap();
        assert!(report.runs >= 1);
        assert!(!report.samples.is_empty());
        for s in &report.samples {
            assert!(s.busy_ns >= 0.0);
            assert!(s.lines > 0.0);
            assert!(s.span_lines > 0.0);
            assert!(s.iters > 0.0);
        }
    }

    #[test]
    fn fit_nest_yields_a_model_end_to_end() {
        let a =
            parse("doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = B[i,j] + B[i+1,j]; } }").unwrap();
        let b = parse(
            "doall (i, 101, 228) { doall (j, 1, 128) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap();
        let model = fit_nest(&[(&a, 4), (&b, 4)], &quick_cfg()).unwrap();
        assert!(model.samples >= 8);
        assert!(model.per_tile_ns >= alp_linalg::Rat::ZERO);
    }
}
