//! Per-candidate-grid features of the hybrid cost model.
//!
//! Everything here is computed *analytically* from the nest — no probe
//! runs — so the same features score candidates at plan time and label
//! probe measurements at calibration time.

use crate::CalibrateError;
use alp_footprint::CostModel;
use alp_linalg::{IMat, IVec, Rat};
use alp_loopir::LoopNest;
use alp_partition::rect::factorizations;
use alp_plan::{rect_tiles, IterBox, SkewedCandidate};
use std::collections::HashMap;

/// The feature vector the hybrid cost model scores one candidate
/// processor grid by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridFeatures {
    /// The candidate processor grid (one factor per parallel loop).
    pub grid: Vec<i128>,
    /// Interior tile extents `λ_k` (inclusive), as `partition_rect`
    /// derives them: a tile spans `ceil(n_k / g_k)` iterations.
    pub tile_extents: Vec<i128>,
    /// Non-empty tiles in the partition.
    pub tiles: i128,
    /// Modeled worst-tile cumulative footprint (Theorem 4 /
    /// [`CostModel::cost_rect`]) — the analytic objective's own value.
    pub lines: Rat,
    /// Worst-tile address envelope in cache lines: per referenced
    /// array, the span from the lowest to the highest line any
    /// reference touches anywhere in the tile, summed over arrays.
    /// Affine subscripts reach their extremes at tile-box corners, so
    /// the envelope is exact from `2^depth` corner evaluations.
    pub span_lines: i128,
    /// Worst-tile iterations per repetition.
    pub iters: i128,
    /// Outer sequential repetitions of the nest.
    pub reps: i128,
}

/// Row-major layout of one array: per-dimension lower bounds and
/// strides, for linearizing subscript vectors into addresses.
struct Layout {
    lo: Vec<i128>,
    stride: Vec<i128>,
}

fn layouts(nest: &LoopNest) -> HashMap<String, Layout> {
    nest.array_extents()
        .into_iter()
        .map(|(name, dims)| {
            let lo: Vec<i128> = dims.iter().map(|&(l, _)| l).collect();
            let mut stride = vec![1i128; dims.len()];
            for k in (0..dims.len().saturating_sub(1)).rev() {
                let (l, h) = dims[k + 1];
                stride[k] = stride[k + 1] * (h - l + 1);
            }
            (name, Layout { lo, stride })
        })
        .collect()
}

/// The address envelope (in lines) of one tile box: for each array, the
/// min and max row-major address any reference evaluates to at any
/// corner of the box, widened to whole lines and summed over arrays.
fn tile_span_lines(
    nest: &LoopNest,
    layouts: &HashMap<String, Layout>,
    tile: &IterBox,
    line_size: u64,
) -> i128 {
    let depth = tile.lo.len();
    let line = line_size.max(1) as i128;
    let mut envelope: HashMap<&str, (i128, i128)> = HashMap::new();
    for mask in 0u32..(1u32 << depth) {
        let corner = IVec(
            (0..depth)
                .map(|k| {
                    if mask & (1 << k) != 0 {
                        tile.hi[k] as i128
                    } else {
                        tile.lo[k] as i128
                    }
                })
                .collect(),
        );
        for r in nest.all_refs() {
            let Some(layout) = layouts.get(r.array.as_str()) else {
                continue;
            };
            let subs = r.eval(&corner);
            let addr: i128 = subs
                .0
                .iter()
                .zip(&layout.lo)
                .zip(&layout.stride)
                .map(|((&s, &lo), &st)| (s - lo) * st)
                .sum();
            envelope
                .entry(r.array.as_str())
                .and_modify(|(mn, mx)| {
                    *mn = (*mn).min(addr);
                    *mx = (*mx).max(addr);
                })
                .or_insert((addr, addr));
        }
    }
    envelope
        .values()
        .map(|&(mn, mx)| mx / line - mn / line + 1)
        .sum()
}

/// Every factorization of `p` over the nest's parallel loops that is
/// feasible (no dimension gets more processors than iterations) — the
/// same candidate set `partition_rect` searches, in the same order.
pub fn candidate_grids(nest: &LoopNest, p: i128) -> Vec<Vec<i128>> {
    let trips: Vec<i128> = nest.loops.iter().map(|l| l.trip_count()).collect();
    factorizations(p, nest.depth())
        .into_iter()
        .filter(|grid| grid.iter().zip(&trips).all(|(&g, &n)| g <= n))
        .collect()
}

/// Compute the hybrid-cost features of one candidate grid.
pub fn grid_features(
    nest: &LoopNest,
    model: &CostModel,
    grid: &[i128],
    line_size: u64,
) -> Result<GridFeatures, CalibrateError> {
    let (tiles, _chunks) = rect_tiles(nest, grid)?;
    let trips: Vec<i128> = nest.loops.iter().map(|l| l.trip_count()).collect();
    let tile_extents: Vec<i128> = grid
        .iter()
        .zip(&trips)
        .map(|(&g, &n)| (n + g - 1) / g - 1)
        .collect();
    let lines = model.cost_rect(&tile_extents);
    let lay = layouts(nest);
    let mut span_lines = 0i128;
    let mut iters = 0i128;
    let mut nonempty = 0i128;
    for t in &tiles {
        if t.is_empty() {
            continue;
        }
        nonempty += 1;
        span_lines = span_lines.max(tile_span_lines(nest, &lay, t, line_size));
        iters = iters.max(t.volume() as i128);
    }
    if nonempty == 0 {
        return Err(CalibrateError::Degenerate(format!(
            "grid {grid:?} produces no non-empty tiles"
        )));
    }
    Ok(GridFeatures {
        grid: grid.to_vec(),
        tile_extents,
        tiles: nonempty,
        lines,
        span_lines,
        iters,
        reps: nest.seq_repetitions(),
    })
}

/// The address envelope of one *transformed* tile: corners of the
/// rectangular `j`-space box are mapped back through `V = U⁻¹` before
/// evaluating the references, so the envelope is taken over the
/// pre-image parallelepiped.  Affine subscripts composed with a linear
/// map are still affine in `j`, so corner evaluation stays exact for
/// the unclipped box (a sound over-approximation of the clipped tile).
fn skewed_tile_span_lines(
    nest: &LoopNest,
    layouts: &HashMap<String, Layout>,
    tile: &IterBox,
    v: &IMat,
    line_size: u64,
) -> i128 {
    let depth = tile.lo.len();
    let line = line_size.max(1) as i128;
    let mut envelope: HashMap<&str, (i128, i128)> = HashMap::new();
    for mask in 0u32..(1u32 << depth) {
        let corner_i = IVec(
            (0..depth)
                .map(|d| {
                    (0..depth)
                        .map(|k| {
                            let j = if mask & (1 << k) != 0 {
                                tile.hi[k] as i128
                            } else {
                                tile.lo[k] as i128
                            };
                            j * v[(k, d)]
                        })
                        .sum()
                })
                .collect(),
        );
        for r in nest.all_refs() {
            let Some(layout) = layouts.get(r.array.as_str()) else {
                continue;
            };
            let subs = r.eval(&corner_i);
            let addr: i128 = subs
                .0
                .iter()
                .zip(&layout.lo)
                .zip(&layout.stride)
                .map(|((&s, &lo), &st)| (s - lo) * st)
                .sum();
            envelope
                .entry(r.array.as_str())
                .and_modify(|(mn, mx)| {
                    *mn = (*mn).min(addr);
                    *mx = (*mx).max(addr);
                })
                .or_insert((addr, addr));
        }
    }
    envelope
        .values()
        .map(|&(mn, mx)| mx / line - mn / line + 1)
        .sum()
}

/// Hybrid-cost features of one **skewed** candidate: tiles are
/// rectangular in the transformed `j = i·U` space, iterations are
/// counted over the exact clipped domain, and the analytic `lines`
/// value is the parallelepiped Eq.-2 cost the candidate search already
/// attached.  The same feature vector shape scores rectangular and
/// skewed candidates, so one fitted latency model ranks both classes.
pub fn skewed_grid_features(
    nest: &LoopNest,
    cand: &SkewedCandidate,
    line_size: u64,
) -> Result<GridFeatures, CalibrateError> {
    let (tiles, _chunks, domain) = alp_plan::transformed_tiles(nest, &cand.transform, &cand.grid)?;
    let lay = layouts(nest);
    let v = cand.transform.v();
    let mut span_lines = 0i128;
    let mut iters = 0i128;
    let mut nonempty = 0i128;
    for t in &tiles {
        let points = domain.count(t);
        if points == 0 {
            continue;
        }
        nonempty += 1;
        span_lines = span_lines.max(skewed_tile_span_lines(nest, &lay, t, v, line_size));
        iters = iters.max(points);
    }
    if nonempty == 0 {
        return Err(CalibrateError::Degenerate(format!(
            "skewed grid {:?} produces no non-empty tiles",
            cand.grid
        )));
    }
    Ok(GridFeatures {
        grid: cand.grid.clone(),
        tile_extents: cand.tile_extents.clone(),
        tiles: nonempty,
        lines: Rat::int(cand.analytic_cost),
        span_lines,
        iters,
        reps: nest.seq_repetitions(),
    })
}

/// Per-tile `(span, iters)` labels for one skewed candidate, indexed
/// like the transformed executor's tile numbering (`None` for tiles the
/// clipping empties) — the skewed analogue of [`per_tile_features`].
pub(crate) fn per_tile_skewed_features(
    nest: &LoopNest,
    cand: &SkewedCandidate,
    line_size: u64,
) -> Result<Vec<Option<(i128, i128)>>, CalibrateError> {
    let (tiles, _chunks, domain) = alp_plan::transformed_tiles(nest, &cand.transform, &cand.grid)?;
    let lay = layouts(nest);
    let v = cand.transform.v();
    Ok(tiles
        .iter()
        .map(|t| {
            let points = domain.count(t);
            if points == 0 {
                None
            } else {
                Some((skewed_tile_span_lines(nest, &lay, t, v, line_size), points))
            }
        })
        .collect())
}

/// Per-tile span features for every tile of one grid, indexed like the
/// executor's tile numbering — the labels probe measurements are fitted
/// against.
pub(crate) fn per_tile_features(
    nest: &LoopNest,
    grid: &[i128],
    line_size: u64,
) -> Result<Vec<Option<(i128, i128)>>, CalibrateError> {
    let (tiles, _chunks) = rect_tiles(nest, grid)?;
    let lay = layouts(nest);
    Ok(tiles
        .iter()
        .map(|t| {
            if t.is_empty() {
                None
            } else {
                Some((
                    tile_span_lines(nest, &lay, t, line_size),
                    t.volume() as i128,
                ))
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn example2() -> LoopNest {
        // The skewed nest whose measured ordering inverts the analytic
        // one: strips [1,16] minimize lines, blocks [4,4] minimize span.
        parse(
            "doall (i, 101, 612) { doall (j, 1, 512) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap()
    }

    #[test]
    fn candidate_grids_match_partition_search() {
        let nest = example2();
        let grids = candidate_grids(&nest, 16);
        assert!(grids.contains(&vec![1, 16]));
        assert!(grids.contains(&vec![4, 4]));
        assert!(grids.contains(&vec![16, 1]));
        // Infeasible factor (more processors than iterations) filtered.
        let tiny = parse("doall (i, 0, 3) { doall (j, 0, 63) { A[i,j] = A[i,j]; } }").unwrap();
        assert!(candidate_grids(&tiny, 8).iter().all(|g| g[0] <= 4));
    }

    #[test]
    fn strips_have_fewer_lines_but_wider_span_than_blocks() {
        let nest = example2();
        let model = CostModel::from_nest(&nest);
        let strips = grid_features(&nest, &model, &[1, 16], 1).unwrap();
        let blocks = grid_features(&nest, &model, &[4, 4], 1).unwrap();
        assert_eq!(strips.tiles, 16);
        assert_eq!(blocks.tiles, 16);
        assert_eq!(strips.reps, 1);
        // The analytic objective prefers strips...
        assert!(
            strips.lines < blocks.lines,
            "{:?} vs {:?}",
            strips.lines,
            blocks.lines
        );
        // ...but their per-tile address envelope is far wider — the
        // signal the measured inversion rides on.
        assert!(
            strips.span_lines > 2 * blocks.span_lines,
            "strips span {} vs blocks span {}",
            strips.span_lines,
            blocks.span_lines
        );
    }

    #[test]
    fn span_respects_line_size() {
        let nest = example2();
        let model = CostModel::from_nest(&nest);
        let l1 = grid_features(&nest, &model, &[4, 4], 1).unwrap().span_lines;
        let l8 = grid_features(&nest, &model, &[4, 4], 8).unwrap().span_lines;
        assert!(l8 < l1 && l8 >= l1 / 8, "1-elem {l1} vs 8-elem {l8}");
    }

    #[test]
    fn per_tile_features_align_with_tiles() {
        let nest = example2();
        let per = per_tile_features(&nest, &[4, 4], 1).unwrap();
        assert_eq!(per.len(), 16);
        assert!(per.iter().all(|f| f.is_some()));
        // Interior tiles of a 512/4 × 512/4 split: 128×128 iterations.
        assert_eq!(per[0].unwrap().1, 128 * 128);
    }
}
