//! Fitting the latency model from probe measurements.

use crate::{CalibrateError, GridFeatures};
use alp_linalg::Rat;
use alp_plan::LatencyCoefficients;

/// One probe observation: what one tile cost per repetition, and the
/// features the model explains it with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileSample {
    /// Measured busy time of the tile, per repetition, in nanoseconds.
    pub busy_ns: f64,
    /// Distinct cache lines the tile touched (measured when touch
    /// tracking was on, modeled otherwise).
    pub lines: f64,
    /// The tile's address envelope in lines (analytic, see
    /// [`GridFeatures::span_lines`]).
    pub span_lines: f64,
    /// Iterations in the tile per repetition.
    pub iters: f64,
}

/// Fitted per-machine latency coefficients, all in nanoseconds and all
/// non-negative exact rationals.
///
/// The in-memory twin of [`alp_plan::LatencyCoefficients`] — that type
/// is the *plan provenance* (what gets serialized), this one is the
/// *model* (what scores candidates).  They convert losslessly in both
/// directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed dispatch/teardown overhead per tile (`a`).
    pub per_tile_ns: Rat,
    /// Cost per distinct cache line touched (`b`).
    pub per_line_ns: Rat,
    /// Cost per line of address envelope (`s`) — the locality term the
    /// footprint model lacks.
    pub per_span_line_ns: Rat,
    /// Cost per iteration executed (`d`).
    pub per_iter_ns: Rat,
    /// Synchronization cost per outer repetition (`c`): the critical-
    /// path barrier wait.
    pub per_rep_ns: Rat,
    /// Probe samples the fit consumed.
    pub samples: u64,
}

impl LatencyModel {
    /// The hybrid cost of one candidate tiling, in (model) nanoseconds:
    ///
    /// `a·tiles + reps·(b·lines + s·span + d·iters) + c·reps`
    ///
    /// Worst-tile features approximate the per-repetition critical
    /// path; the per-tile term charges dispatch overhead for the whole
    /// tile population.
    pub fn hybrid_cost(&self, f: &GridFeatures) -> Rat {
        let reps = Rat::int(f.reps);
        self.per_tile_ns * Rat::int(f.tiles)
            + reps
                * (self.per_line_ns * f.lines
                    + self.per_span_line_ns * Rat::int(f.span_lines)
                    + self.per_iter_ns * Rat::int(f.iters))
            + self.per_rep_ns * Rat::int(f.reps)
    }
}

impl From<LatencyCoefficients> for LatencyModel {
    fn from(c: LatencyCoefficients) -> Self {
        LatencyModel {
            per_tile_ns: c.per_tile_ns,
            per_line_ns: c.per_line_ns,
            per_span_line_ns: c.per_span_line_ns,
            per_iter_ns: c.per_iter_ns,
            per_rep_ns: c.per_rep_ns,
            samples: c.samples,
        }
    }
}

impl From<LatencyModel> for LatencyCoefficients {
    fn from(m: LatencyModel) -> Self {
        LatencyCoefficients {
            per_tile_ns: m.per_tile_ns,
            per_line_ns: m.per_line_ns,
            per_span_line_ns: m.per_span_line_ns,
            per_iter_ns: m.per_iter_ns,
            per_rep_ns: m.per_rep_ns,
            samples: m.samples,
        }
    }
}

/// Minimum probe samples [`fit`] accepts — twice the parameter count,
/// so the normal equations are honestly overdetermined.
pub const MIN_SAMPLES: usize = 8;

/// Coefficients snap to rationals over this denominator: 1/1000 ns
/// resolution, comfortably below timer noise.
const SNAP_DEN: i128 = 1000;

fn snap(x: f64) -> Rat {
    let clamped = x.max(0.0);
    Rat::new((clamped * SNAP_DEN as f64).round() as i128, SNAP_DEN)
}

/// Solve the `n×n` system `m·x = rhs` by Gaussian elimination with
/// partial pivoting; `None` when (numerically) singular.
fn solve(mut m: Vec<Vec<f64>>, mut rhs: Vec<f64>) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            let (upper, lower) = m.split_at_mut(row);
            for (k, cell) in lower[0].iter_mut().enumerate().take(n).skip(col) {
                *cell -= f * upper[col][k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut v = rhs[row];
        for k in row + 1..n {
            v -= m[row][k] * x[k];
        }
        x[row] = v / m[row][row];
    }
    Some(x)
}

/// Least-squares fit of `busy ≈ a + b·lines + s·span + d·iters` over
/// `active` feature columns (the intercept is always active); inactive
/// columns get coefficient 0.  Features are scaled to unit max before
/// solving so the normal equations stay conditioned, and a whisper of
/// ridge keeps collinear probes (e.g. every candidate producing the
/// same iteration count) solvable instead of singular.
fn fit_active(samples: &[TileSample], active: &[bool; 3]) -> Option<[f64; 4]> {
    let col = |s: &TileSample, j: usize| match j {
        0 => 1.0,
        1 => s.lines,
        2 => s.span_lines,
        _ => s.iters,
    };
    let mut idx = vec![0usize];
    for (j, &on) in active.iter().enumerate() {
        if on {
            idx.push(j + 1);
        }
    }
    let n = idx.len();
    let scale: Vec<f64> = idx
        .iter()
        .map(|&j| {
            let m = samples.iter().map(|s| col(s, j).abs()).fold(0.0, f64::max);
            if m > 0.0 {
                m
            } else {
                1.0
            }
        })
        .collect();
    let mut xtx = vec![vec![0.0f64; n]; n];
    let mut xty = vec![0.0f64; n];
    for s in samples {
        for a in 0..n {
            let xa = col(s, idx[a]) / scale[a];
            for b in 0..n {
                xtx[a][b] += xa * col(s, idx[b]) / scale[b];
            }
            xty[a] += xa * s.busy_ns;
        }
    }
    let ridge = 1e-9
        * (0..n)
            .map(|a| xtx[a][a])
            .fold(0.0, f64::max)
            .max(f64::MIN_POSITIVE);
    for (a, row) in xtx.iter_mut().enumerate() {
        row[a] += ridge;
    }
    let sol = solve(xtx, xty)?;
    let mut out = [0.0f64; 4];
    for (k, &j) in idx.iter().enumerate() {
        out[j] = sol[k] / scale[k];
    }
    Some(out)
}

/// Fit the latency model from probe samples plus the mean critical-path
/// barrier wait (`barrier_ns`, nanoseconds per repetition).
///
/// Negative fitted coefficients are physically meaningless (they only
/// arise from collinearity or noise), so the fit projects onto the
/// non-negative orthant the standard way: drop the most negative
/// feature, refit the rest, repeat.  The intercept clamps at zero.
pub fn fit(samples: &[TileSample], barrier_ns: f64) -> Result<LatencyModel, CalibrateError> {
    if samples.len() < MIN_SAMPLES {
        return Err(CalibrateError::NotEnoughSamples {
            got: samples.len(),
            need: MIN_SAMPLES,
        });
    }
    let mut active = [true; 3];
    let coeffs = loop {
        let c = fit_active(samples, &active).ok_or_else(|| {
            CalibrateError::Degenerate(
                "normal equations are singular; probe more distinct tilings".into(),
            )
        })?;
        let worst = (0..3)
            .filter(|&j| active[j] && c[j + 1] < 0.0)
            .min_by(|&a, &b| c[a + 1].total_cmp(&c[b + 1]));
        match worst {
            Some(j) => active[j] = false,
            None => break c,
        }
    };
    Ok(LatencyModel {
        per_tile_ns: snap(coeffs[0]),
        per_line_ns: snap(coeffs[1]),
        per_span_line_ns: snap(coeffs[2]),
        per_iter_ns: snap(coeffs[3]),
        per_rep_ns: snap(barrier_ns),
        samples: samples.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a: f64, b: f64, s: f64, d: f64) -> Vec<TileSample> {
        // 3 feature regimes × 4 magnitudes, exactly on the model.
        let mut out = Vec::new();
        for k in 1..=4 {
            let k = k as f64;
            for (lines, span, iters) in [
                (100.0 * k, 150.0 * k, 4000.0 * k),
                (300.0 * k, 9000.0 * k, 4000.0 * k),
                (200.0 * k, 400.0 * k, 1000.0 * k),
            ] {
                out.push(TileSample {
                    busy_ns: a + b * lines + s * span + d * iters,
                    lines,
                    span_lines: span,
                    iters,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_known_coefficients() {
        let m = fit(&synth(1500.0, 2.5, 0.125, 0.75), 42_000.0).unwrap();
        assert_eq!(m.per_tile_ns, Rat::new(1_500_000, 1000));
        assert_eq!(m.per_line_ns, Rat::new(2500, 1000));
        assert_eq!(m.per_span_line_ns, Rat::new(125, 1000));
        assert_eq!(m.per_iter_ns, Rat::new(750, 1000));
        assert_eq!(m.per_rep_ns, Rat::int(42_000));
        assert_eq!(m.samples, 12);
    }

    #[test]
    fn negative_coefficients_are_projected_out() {
        // Data generated with NO span effect but noisy lines: the fit
        // must never report a negative coefficient.
        let mut samples = synth(1000.0, 3.0, 0.0, 0.5);
        for (i, s) in samples.iter_mut().enumerate() {
            s.busy_ns += if i % 2 == 0 { 35.0 } else { -35.0 };
        }
        let m = fit(&samples, 0.0).unwrap();
        assert!(m.per_line_ns >= Rat::ZERO);
        assert!(m.per_span_line_ns >= Rat::ZERO);
        assert!(m.per_iter_ns >= Rat::ZERO);
        assert!(m.per_tile_ns >= Rat::ZERO);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let samples = synth(1.0, 1.0, 1.0, 1.0);
        assert!(matches!(
            fit(&samples[..4], 0.0),
            Err(CalibrateError::NotEnoughSamples { got: 4, need: 8 })
        ));
    }

    #[test]
    fn collinear_features_still_fit() {
        // span == 2·lines everywhere: individually unidentifiable, but
        // the ridge + projection must still return a usable model.
        let samples: Vec<TileSample> = (1..=10)
            .map(|k| {
                let lines = 100.0 * k as f64;
                TileSample {
                    busy_ns: 500.0 + 4.0 * lines,
                    lines,
                    span_lines: 2.0 * lines,
                    iters: 50.0,
                }
            })
            .collect();
        let m = fit(&samples, 0.0).unwrap();
        // Combined effect preserved: b + 2s ≈ 4.
        let combined = m.per_line_ns.to_f64() + 2.0 * m.per_span_line_ns.to_f64();
        assert!((combined - 4.0).abs() < 0.1, "combined {combined}");
    }

    #[test]
    fn model_round_trips_through_plan_coefficients() {
        let m = fit(&synth(1500.0, 2.5, 0.125, 0.75), 42_000.0).unwrap();
        let c: LatencyCoefficients = m.clone().into();
        let back: LatencyModel = c.into();
        assert_eq!(back, m);
    }
}
