//! Code generation for partitioned loops.
//!
//! The analysis side of `alp` decides tile *shapes*; this crate turns a
//! shape into executable structure:
//!
//! * [`assign`] — exact iteration-to-processor assignment for
//!   rectangular grids, hyperplane slabs, and general parallelepiped
//!   tilings (every iteration lands on exactly one processor — the
//!   property the simulator needs, and a property test here);
//! * [`emit`] — human-readable per-processor loop nests.  Rectangular
//!   tiles emit directly (the reason §3.7 calls them "easy code
//!   generation"); parallelepiped tiles go through the small
//!   Fourier–Motzkin eliminator in [`fm`] to derive scanning bounds.

pub mod assign;
pub mod emit;

/// Re-export of the Fourier–Motzkin eliminator, which moved to
/// `alp-linalg` so that `alp-analysis` can share it.
pub use alp_linalg::fm;

pub use alp_linalg::fm::{eliminate, Constraint, System};
pub use assign::{
    assign_para, assign_rect, assign_slabs, assignment_stats, block_assignment, block_iterations,
    is_exact_cover, Assignment, AssignmentStats,
};
pub use emit::{emit_para_code, emit_rect_code};
