//! Readable per-processor loop-nest emission.

use crate::fm::{eliminate, System};
use alp_linalg::{IMat, RMat, Rat};
use alp_loopir::LoopNest;

/// Emit pseudo-code for a rectangular partition: the SPMD loop a
/// processor with grid coordinates `(p_0, …)` executes.
///
/// Rectangular tiles need only `min`/`max` clamps — the "easy code
/// generation" §3.7 credits them with.
pub fn emit_rect_code(nest: &LoopNest, grid: &[i128]) -> String {
    assert_eq!(grid.len(), nest.depth(), "grid depth mismatch");
    let mut s = String::new();
    s.push_str("// SPMD code for processor with grid coordinates (");
    for k in 0..grid.len() {
        if k > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("p{k}"));
    }
    s.push_str(&format!(")  — grid {:?}\n", grid));
    let mut indent = 0usize;
    for (k, (lp, &g)) in nest.loops.iter().zip(grid).enumerate() {
        let n = lp.trip_count();
        let chunk = (n + g - 1) / g;
        s.push_str(&format!(
            "{}for {} in max({lo}, {lo} + p{k}*{chunk}) ..= min({hi}, {lo} + (p{k}+1)*{chunk} - 1) {{\n",
            "  ".repeat(indent),
            lp.name,
            lo = lp.lower,
            hi = lp.upper,
        ));
        indent += 1;
    }
    let names = nest.index_names();
    for st in &nest.body {
        let rhs: Vec<String> = st.rhs.iter().map(|r| r.display(&names)).collect();
        s.push_str(&format!(
            "{}{} = {};\n",
            "  ".repeat(indent),
            st.lhs.display(&names),
            if rhs.is_empty() {
                "0".into()
            } else {
                rhs.join(" + ")
            }
        ));
    }
    while indent > 0 {
        indent -= 1;
        s.push_str(&format!("{}}}\n", "  ".repeat(indent)));
    }
    s
}

/// Emit pseudo-code scanning one parallelepiped tile `L` anchored at a
/// symbolic origin, using Fourier–Motzkin elimination to derive the
/// nested loop bounds.
///
/// The tile is `{ā·L : 0 ≤ ā ≤ 1}`; in iteration coordinates the
/// constraints are `0 ≤ ī·L⁻¹ ≤ 1` componentwise.  Variables are
/// eliminated innermost-out so that loop `k`'s bounds mention only
/// `i_0..i_{k-1}`.
///
/// # Panics
/// Panics if `L` is singular.
pub fn emit_para_code(nest: &LoopNest, l_matrix: &IMat) -> String {
    let l = nest.depth();
    assert_eq!(l_matrix.rows(), l, "tile depth mismatch");
    let linv = RMat::from_int(l_matrix)
        .inverse()
        .expect("tile must be nonsingular");
    // Constraints over iteration variables x: for each tile coordinate
    // column c: 0 ≤ Σ_r x_r·linv[r][c] ≤ 1.
    let mut sys = System::new(l);
    for c in 0..l {
        let coeffs: Vec<Rat> = (0..l).map(|r| linv[(r, c)]).collect();
        sys.ge(coeffs.clone(), Rat::ZERO);
        sys.le(coeffs, Rat::ONE);
    }
    // Progressive elimination: systems[k] has variables 0..=k live.
    let mut systems = vec![sys];
    for k in (1..l).rev() {
        let prev = systems.last().expect("nonempty");
        systems.push(eliminate(prev, k));
    }
    systems.reverse(); // systems[k] now bounds variable k given 0..k-1

    let names = nest.index_names();
    let mut out = String::new();
    out.push_str(&format!(
        "// Scanning the tile at the origin with edge rows L = {:?}\n",
        (0..l)
            .map(|r| l_matrix.row(r).0.clone())
            .collect::<Vec<_>>()
    ));
    let mut indent = 0usize;
    for k in 0..l {
        let sys_k = &systems[k];
        let mut lowers: Vec<String> = Vec::new();
        let mut uppers: Vec<String> = Vec::new();
        for cst in &sys_k.constraints {
            let ck = cst.coeffs[k];
            if ck.is_zero() {
                continue;
            }
            // Σ_{j<k} c_j x_j + c_k x_k ≤ b
            //   =>  x_k ≤ (b − Σ c_j x_j)/c_k   (c_k > 0)
            //   =>  x_k ≥ (b − Σ c_j x_j)/c_k   (c_k < 0)
            let mut terms = format!("{}", cst.bound / ck);
            for (name, &cj0) in names.iter().zip(cst.coeffs.iter()).take(k) {
                let cj = cj0 / ck;
                if cj.is_zero() {
                    continue;
                }
                terms.push_str(&format!(" - ({cj})*{name}"));
            }
            if ck > Rat::ZERO {
                uppers.push(format!("floor({terms})"));
            } else {
                lowers.push(format!("ceil({terms})"));
            }
        }
        let lo = match lowers.len() {
            0 => "-inf".to_string(),
            1 => lowers.remove(0),
            _ => format!("max({})", lowers.join(", ")),
        };
        let hi = match uppers.len() {
            0 => "+inf".to_string(),
            1 => uppers.remove(0),
            _ => format!("min({})", uppers.join(", ")),
        };
        out.push_str(&format!(
            "{}for {} in {} ..= {} {{\n",
            "  ".repeat(indent),
            names[k],
            lo,
            hi
        ));
        indent += 1;
    }
    for st in &nest.body {
        let rhs: Vec<String> = st.rhs.iter().map(|r| r.display(&names)).collect();
        out.push_str(&format!(
            "{}{} = {};\n",
            "  ".repeat(indent),
            st.lhs.display(&names),
            if rhs.is_empty() {
                "0".into()
            } else {
                rhs.join(" + ")
            }
        ));
    }
    while indent > 0 {
        indent -= 1;
        out.push_str(&format!("{}}}\n", "  ".repeat(indent)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn rect_code_shape() {
        let nest = parse("doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = B[i,j+1]; } }").unwrap();
        let code = emit_rect_code(&nest, &[4, 2]);
        assert!(code.contains("for i in max(0, 0 + p0*16)"), "{code}");
        assert!(code.contains("for j in max(0, 0 + p1*32)"), "{code}");
        assert!(code.contains("A[i, j] = B[i, j+1];"), "{code}");
    }

    #[test]
    fn rect_code_nonzero_lower() {
        let nest = parse("doall (i, 101, 200) { A[i] = A[i]; }").unwrap();
        let code = emit_rect_code(&nest, &[10]);
        assert!(code.contains("101 + p0*10"), "{code}");
        assert!(code.contains("min(200"), "{code}");
    }

    #[test]
    fn para_code_rect_tile_degenerates_to_box() {
        let nest = parse("doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j]; } }").unwrap();
        let code = emit_para_code(&nest, &IMat::diag(&[4, 8]));
        // Outer: 0 ≤ i ≤ 4; inner: 0 ≤ j ≤ 8.
        assert!(code.contains("for i in ceil(0) ..= floor(4)"), "{code}");
        assert!(code.contains("for j in ceil(0) ..= floor(8)"), "{code}");
    }

    #[test]
    fn para_code_skewed_bounds_mention_outer_var() {
        let nest = parse("doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j]; } }").unwrap();
        // Example 6 tile: rows (4,4), (3,0).
        let code = emit_para_code(&nest, &IMat::from_rows(&[&[4, 4], &[3, 0]]));
        // Inner loop bounds must reference i.
        let inner = code
            .lines()
            .find(|l| l.trim_start().starts_with("for j"))
            .unwrap();
        assert!(
            inner.contains('i'),
            "inner bounds should mention i: {inner}"
        );
    }

    #[test]
    #[should_panic(expected = "nonsingular")]
    fn para_code_rejects_singular() {
        let nest = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[i,j] = A[i,j]; } }").unwrap();
        emit_para_code(&nest, &IMat::from_rows(&[&[1, 1], &[2, 2]]));
    }
}
