//! Iteration-to-processor assignment.

use alp_linalg::{IMat, IVec, RMat, Rat};
use alp_loopir::LoopNest;
use std::collections::HashMap;

/// An assignment of every iteration to exactly one processor.
pub type Assignment = Vec<Vec<IVec>>;

/// Rectangular assignment: split loop `k` into `grid[k]` contiguous
/// chunks of `ceil(n_k / grid[k])` iterations; processor with grid
/// coordinates `(c_0, …)` (row-major linearized) executes the product of
/// its chunks.
///
/// The tiles themselves come from [`alp_plan::rect_tiles`] — the one
/// rectangular enumerator of the workspace — so this assignment, the
/// native executor, and the machine simulator agree by construction on
/// which iterations processor `t` owns.
///
/// # Panics
/// Panics if the grid depth mismatches the nest or any factor exceeds
/// the trip count.
pub fn assign_rect(nest: &LoopNest, grid: &[i128]) -> Assignment {
    let l = nest.depth();
    assert_eq!(grid.len(), l, "grid depth mismatch");
    let trips: Vec<i128> = nest.loops.iter().map(|lp| lp.trip_count()).collect();
    for (k, (&g, &n)) in grid.iter().zip(&trips).enumerate() {
        assert!(
            g >= 1 && g <= n,
            "grid factor {g} invalid for loop {k} with {n} iterations"
        );
    }
    let (tiles, _) =
        alp_plan::rect_tiles(nest, grid).expect("asserts above uphold the enumerator's contract");
    tiles
        .iter()
        .map(|tile| {
            let mut pts = Vec::with_capacity(tile.volume() as usize);
            tile.for_each_point(|i| pts.push(IVec(i.iter().map(|&x| x as i128).collect())));
            pts
        })
        .collect()
}

/// Slab assignment along a hyperplane normal `h` (communication-free
/// partitions): iterations with equal `⌊(h·ī − min)/width⌋` share a
/// processor.
///
/// # Panics
/// Panics if `h` is zero or `p < 1`.
pub fn assign_slabs(nest: &LoopNest, h: &IVec, p: i128) -> Assignment {
    assert!(p >= 1, "need at least one processor");
    assert!(!h.is_zero(), "zero normal");
    let pts = nest.iteration_points();
    let vals: Vec<i128> = pts.iter().map(|i| i.dot(h).expect("depth")).collect();
    let (mn, mx) = match (vals.iter().min(), vals.iter().max()) {
        (Some(&a), Some(&b)) => (a, b),
        _ => return vec![Vec::new(); p as usize],
    };
    let span = mx - mn + 1;
    let width = (span + p - 1) / p;
    let mut out: Assignment = vec![Vec::new(); p as usize];
    for (i, v) in pts.into_iter().zip(vals) {
        let slab = ((v - mn) / width).min(p - 1);
        out[slab as usize].push(i);
    }
    out
}

/// Parallelepiped assignment from a tile matrix `L` (rows are edge
/// vectors): iteration `ī` belongs to the lattice cell
/// `⌊ī·L⁻¹⌋` (componentwise floor of the tile coordinates).  Cells are
/// numbered in first-touch order; the number of processors equals the
/// number of nonempty cells (boundary cells are fragments).
///
/// Returns the assignment and the cell index map.
///
/// # Panics
/// Panics if `L` is singular.
pub fn assign_para(nest: &LoopNest, l_matrix: &IMat) -> (Assignment, HashMap<Vec<i128>, usize>) {
    let linv = RMat::from_int(l_matrix)
        .inverse()
        .expect("tile matrix must be nonsingular");
    let l = nest.depth();
    let mut cells: HashMap<Vec<i128>, usize> = HashMap::new();
    let mut out: Assignment = Vec::new();
    for i in nest.iteration_points() {
        // Tile coordinates a = i · L⁻¹ (exact rationals), cell = floor(a).
        let mut cell = Vec::with_capacity(l);
        for col in 0..l {
            let mut acc = Rat::ZERO;
            for row in 0..l {
                acc = acc + Rat::int(i[row]) * linv[(row, col)];
            }
            cell.push(acc.floor());
        }
        let next = cells.len();
        let id = *cells.entry(cell).or_insert(next);
        if id == out.len() {
            out.push(Vec::new());
        }
        out[id].push(i);
    }
    (out, cells)
}

/// Reorder one processor's iterations into sub-blocks of the given
/// extents (§2.2: "the size of each loop tile executed at any given time
/// ... must be adjusted so that the data fits in the cache").
///
/// The partition (who executes what) is unchanged — only the execution
/// *order* within each processor changes, visiting one cache-sized
/// sub-block at a time.  Blocks are ordered lexicographically, and
/// iterations inside a block keep lexicographic order.
///
/// # Panics
/// Panics if `sub` has the wrong depth or a non-positive extent.
pub fn block_iterations(points: &[IVec], sub: &[i128]) -> Vec<IVec> {
    if points.is_empty() {
        return Vec::new();
    }
    let l = points[0].len();
    assert_eq!(sub.len(), l, "sub-block depth mismatch");
    assert!(
        sub.iter().all(|&s| s >= 1),
        "sub-block extents must be positive"
    );
    let mins: Vec<i128> = (0..l)
        .map(|k| points.iter().map(|p| p[k]).min().expect("nonempty"))
        .collect();
    let mut out = points.to_vec();
    out.sort_by_key(|p| {
        let block: Vec<i128> = (0..l).map(|k| (p[k] - mins[k]) / sub[k]).collect();
        (block, p.clone())
    });
    out
}

/// Apply [`block_iterations`] to every processor of an assignment.
pub fn block_assignment(assignment: &Assignment, sub: &[i128]) -> Assignment {
    assignment
        .iter()
        .map(|tile| block_iterations(tile, sub))
        .collect()
}

/// Load-balance statistics of an assignment (the paper's §2.1
/// equal-size-tiles constraint, measured).
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentStats {
    /// Number of processors with at least one iteration.
    pub nonempty: usize,
    /// Smallest tile (iterations), over nonempty tiles.
    pub min: usize,
    /// Largest tile.
    pub max: usize,
    /// Mean iterations per processor (including empty ones).
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the parallel completion
    /// time is proportional to this.
    pub imbalance: f64,
}

/// Compute load-balance statistics.
pub fn assignment_stats(assignment: &Assignment) -> AssignmentStats {
    let sizes: Vec<usize> = assignment.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().sum();
    let nonempty = sizes.iter().filter(|&&s| s > 0).count();
    let min = sizes.iter().copied().filter(|&s| s > 0).min().unwrap_or(0);
    let max = sizes.iter().copied().max().unwrap_or(0);
    let mean = if assignment.is_empty() {
        0.0
    } else {
        total as f64 / assignment.len() as f64
    };
    let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    AssignmentStats {
        nonempty,
        min,
        max,
        mean,
        imbalance,
    }
}

/// Verify the partition property: every iteration appears exactly once.
pub fn is_exact_cover(nest: &LoopNest, assignment: &Assignment) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut count = 0usize;
    for tile in assignment {
        for i in tile {
            if !seen.insert(i.clone()) {
                return false;
            }
            count += 1;
        }
    }
    count as i128 == nest.iteration_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;
    use proptest::prelude::*;

    fn nest_2d(ni: i128, nj: i128) -> LoopNest {
        parse(&format!(
            "doall (i, 0, {}) {{ doall (j, 0, {}) {{ A[i,j] = A[i,j]; }} }}",
            ni - 1,
            nj - 1
        ))
        .unwrap()
    }

    #[test]
    fn rect_even_split() {
        let nest = nest_2d(8, 8);
        let a = assign_rect(&nest, &[2, 4]);
        assert_eq!(a.len(), 8);
        assert!(is_exact_cover(&nest, &a));
        for tile in &a {
            assert_eq!(tile.len(), 8); // 4x2 iterations each
        }
    }

    #[test]
    fn rect_ragged_split() {
        // 10 iterations over 4 processors: chunks of 3 -> 3,3,3,1.
        let nest = parse("doall (i, 0, 9) { A[i] = A[i]; }").unwrap();
        let a = assign_rect(&nest, &[4]);
        assert!(is_exact_cover(&nest, &a));
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn rect_respects_lower_bounds() {
        let nest = parse("doall (i, 101, 200) { doall (j, 1, 100) { A[i,j] = A[i,j]; } }").unwrap();
        let a = assign_rect(&nest, &[1, 100]);
        assert!(is_exact_cover(&nest, &a));
        assert_eq!(a.len(), 100);
        // Each tile: all 100 i values, one j value.
        assert!(a.iter().all(|t| t.len() == 100));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rect_rejects_oversized_grid() {
        let nest = parse("doall (i, 0, 3) { A[i] = A[i]; }").unwrap();
        assign_rect(&nest, &[8]);
    }

    #[test]
    fn slabs_cover_diagonal() {
        let nest = nest_2d(8, 8);
        let a = assign_slabs(&nest, &IVec::new(&[1, 1]), 4);
        assert!(is_exact_cover(&nest, &a));
        assert_eq!(a.len(), 4);
        // Within a slab, h·i values stay within one width.
        for tile in &a {
            let vals: Vec<i128> = tile.iter().map(|i| i[0] + i[1]).collect();
            let (mn, mx) = (vals.iter().min().unwrap(), vals.iter().max().unwrap());
            assert!(mx - mn < 4, "slab too wide: {mn}..{mx}");
        }
    }

    #[test]
    fn para_identity_tiles_are_rect() {
        let nest = nest_2d(8, 8);
        let (a, cells) = assign_para(&nest, &IMat::diag(&[4, 4]));
        assert!(is_exact_cover(&nest, &a));
        assert_eq!(cells.len(), 4);
        for tile in &a {
            assert_eq!(tile.len(), 16);
        }
    }

    #[test]
    fn para_skewed_tiles_cover() {
        let nest = nest_2d(8, 8);
        // Tile rows (4,4) and (0,4): skewed parallelogram of volume 16.
        let (a, _) = assign_para(&nest, &IMat::from_rows(&[&[4, 4], &[0, 4]]));
        assert!(is_exact_cover(&nest, &a));
        // Interior cells hold 16 iterations; boundary fragments less.
        assert!(a.iter().any(|t| t.len() == 16));
    }

    #[test]
    #[should_panic(expected = "nonsingular")]
    fn para_rejects_singular() {
        let nest = nest_2d(4, 4);
        assign_para(&nest, &IMat::from_rows(&[&[1, 1], &[2, 2]]));
    }

    #[test]
    fn block_iterations_groups_subtiles() {
        let nest = nest_2d(4, 4);
        let pts = nest.iteration_points();
        let blocked = block_iterations(&pts, &[2, 2]);
        // Same multiset of points.
        let mut a = pts.clone();
        let mut b = blocked.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // First four visits stay inside the (0,0) 2x2 block.
        for p in &blocked[..4] {
            assert!(p[0] < 2 && p[1] < 2, "{p}");
        }
        // Next four in block (0,1).
        for p in &blocked[4..8] {
            assert!(p[0] < 2 && p[1] >= 2, "{p}");
        }
    }

    #[test]
    fn block_iterations_unit_blocks_are_identity_order() {
        let nest = nest_2d(3, 3);
        let pts = nest.iteration_points();
        assert_eq!(block_iterations(&pts, &[1, 1]), pts);
    }

    #[test]
    fn block_iterations_empty() {
        assert!(block_iterations(&[], &[2, 2]).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn block_iterations_bad_extent() {
        let nest = nest_2d(2, 2);
        block_iterations(&nest.iteration_points(), &[0, 1]);
    }

    #[test]
    fn block_assignment_preserves_cover() {
        let nest = nest_2d(8, 8);
        let a = assign_rect(&nest, &[2, 2]);
        let blocked = block_assignment(&a, &[2, 2]);
        assert!(is_exact_cover(&nest, &blocked));
        // Per-processor sets unchanged.
        for (orig, b) in a.iter().zip(&blocked) {
            let mut x = orig.clone();
            let mut y = b.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn stats_balanced_grid() {
        let nest = nest_2d(8, 8);
        let a = assign_rect(&nest, &[4, 4]);
        let s = assignment_stats(&a);
        assert_eq!(s.nonempty, 16);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_ragged_grid() {
        let nest = parse("doall (i, 0, 9) { A[i] = A[i]; }").unwrap();
        let a = assign_rect(&nest, &[4]); // 3,3,3,1
        let s = assignment_stats(&a);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.imbalance - 1.2).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_assignment() {
        let s = assignment_stats(&Vec::new());
        assert_eq!(s.max, 0);
        assert_eq!(s.imbalance, 0.0);
    }

    #[test]
    fn slabs_balance_close_to_one() {
        // Diagonal slabs of an 8x8 space: h·i values have a triangular
        // distribution, so imbalance is > 1 but bounded.
        let nest = nest_2d(8, 8);
        let a = assign_slabs(&nest, &IVec::new(&[1, 1]), 4);
        let s = assignment_stats(&a);
        assert!(s.imbalance >= 1.0 && s.imbalance < 2.0, "{s:?}");
    }

    proptest! {
        #[test]
        fn rect_always_exact_cover(
            ni in 1i128..=12, nj in 1i128..=12,
            gi in 1i128..=4, gj in 1i128..=4,
        ) {
            prop_assume!(gi <= ni && gj <= nj);
            let nest = nest_2d(ni, nj);
            let a = assign_rect(&nest, &[gi, gj]);
            prop_assert!(is_exact_cover(&nest, &a));
        }

        #[test]
        fn slabs_always_exact_cover(
            ni in 1i128..=10, nj in 1i128..=10,
            h1 in -2i128..=2, h2 in -2i128..=2,
            p in 1i128..=5,
        ) {
            prop_assume!(h1 != 0 || h2 != 0);
            let nest = nest_2d(ni, nj);
            let a = assign_slabs(&nest, &IVec::new(&[h1, h2]), p);
            prop_assert!(is_exact_cover(&nest, &a));
        }

        #[test]
        fn para_always_exact_cover(
            ni in 1i128..=10, nj in 1i128..=10,
            d in 1i128..=4, s in -2i128..=2,
        ) {
            let nest = nest_2d(ni, nj);
            // L = [[d, s],[0, d]]: always nonsingular.
            let (a, _) = assign_para(&nest, &IMat::from_rows(&[&[d, s], &[0, d]]));
            prop_assert!(is_exact_cover(&nest, &a));
        }
    }
}
