//! Property tests for the Fourier–Motzkin eliminator: projection
//! soundness and completeness against brute-force enumeration.

use alp_codegen::{eliminate, System};
use alp_linalg::Rat;
use proptest::prelude::*;

/// A random small system over 2 variables: a box plus extra random
/// half-planes.
fn arb_system() -> impl Strategy<Value = System> {
    proptest::collection::vec((-3i128..=3, -3i128..=3, -6i128..=6), 0..=3).prop_map(|cuts| {
        let mut s = System::new(2);
        // Bounding box keeps enumeration finite.
        s.ge(vec![Rat::int(1), Rat::int(0)], Rat::int(-5));
        s.le(vec![Rat::int(1), Rat::int(0)], Rat::int(5));
        s.ge(vec![Rat::int(0), Rat::int(1)], Rat::int(-5));
        s.le(vec![Rat::int(0), Rat::int(1)], Rat::int(5));
        for (a, b, c) in cuts {
            s.le(vec![Rat::int(a), Rat::int(b)], Rat::int(c));
        }
        s
    })
}

fn satisfies(s: &System, x: i128, y: i128) -> bool {
    s.constraints
        .iter()
        .all(|c| c.coeffs[0] * Rat::int(x) + c.coeffs[1] * Rat::int(y) <= c.bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After eliminating y, an integer x satisfies the projected system
    /// iff some rational y makes (x, y) feasible.  (FM projection is
    /// exact over the rationals.)
    #[test]
    fn projection_is_exact(s in arb_system()) {
        let proj = eliminate(&s, 1);
        for x in -6i128..=6 {
            // Rational feasibility of the slice: check the y-interval
            // implied by the original constraints at this x.
            let mut lo: Option<Rat> = None;
            let mut hi: Option<Rat> = None;
            let mut slice_infeasible = false;
            for c in &s.constraints {
                let rest = c.bound - c.coeffs[0] * Rat::int(x);
                let cy = c.coeffs[1];
                if cy.is_zero() {
                    if rest < Rat::ZERO {
                        slice_infeasible = true;
                    }
                } else if cy > Rat::ZERO {
                    let b = rest / cy;
                    hi = Some(match hi { Some(h) if h <= b => h, _ => b });
                } else {
                    let b = rest / cy;
                    lo = Some(match lo { Some(l) if l >= b => l, _ => b });
                }
            }
            let feasible = !slice_infeasible
                && match (lo, hi) {
                    (Some(l), Some(h)) => l <= h,
                    _ => true,
                };
            // Projected system restricted to x.
            for c in &proj.constraints {
                prop_assert_eq!(c.coeffs[1], Rat::ZERO, "y not eliminated");
            }
            let proj_ok = proj
                .constraints
                .iter()
                .all(|c| c.coeffs[0] * Rat::int(x) <= c.bound);
            prop_assert_eq!(feasible, proj_ok, "x = {} in {:?}", x, s.constraints.len());
        }
    }

    /// Every feasible integer point stays feasible after eliminating
    /// either variable (soundness).
    #[test]
    fn feasible_points_survive_elimination(s in arb_system()) {
        for x in -6i128..=6 {
            for y in -6i128..=6 {
                if satisfies(&s, x, y) {
                    let px = eliminate(&s, 1);
                    prop_assert!(
                        px.constraints.iter().all(|c| c.coeffs[0] * Rat::int(x) <= c.bound)
                    );
                    let py = eliminate(&s, 0);
                    prop_assert!(
                        py.constraints.iter().all(|c| c.coeffs[1] * Rat::int(y) <= c.bound)
                    );
                }
            }
        }
    }
}
