//! E1 + E14: the affine reference model (Example 1) and the uniformly
//! intersecting classification of Appendix B.

use alp::prelude::*;
use alp_bench::{header, Table};
use alp_footprint::class::{intersecting, uniformly_generated, uniformly_intersecting};

fn main() {
    header("E1", "reference model: Example 1");
    let nest = parse(
        "doall (i1, 0, 9) { doall (i2, 0, 9) { doall (i3, 0, 9) {
           A[i3+2, 5, i2-1, 4] = A[i3+2, 5, i2-1, 4];
         } } }",
    )
    .unwrap();
    let r = &nest.body[0].lhs;
    println!("reference A(i3+2, 5, i2-1, 4) in a triply nested loop:");
    println!("G =\n{}", r.g_matrix());
    println!("a = {}", r.offset());
    let (red, kept) = r.drop_constant_subscripts();
    println!(
        "zero columns dropped -> effective dimension {} (kept subscripts {:?})\n",
        red.dim(),
        kept
    );

    header("E14", "Appendix B: uniformly intersecting classification");
    let cases: Vec<(&str, &str, bool)> = vec![
        // (source with exactly two refs, description, expected uniformly intersecting)
        (
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[i+1,j-3]; } }",
            "A[i,j] vs A[i+1,j-3]",
            true,
        ),
        (
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[i,j+4]; } }",
            "A[i,j] vs A[i,j+4]",
            true,
        ),
        (
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[2*i,j]; } }",
            "A[i,j] vs A[2i,j]",
            false,
        ),
        (
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[2*i,2*j]; } }",
            "A[i,j] vs A[2i,2j]",
            false,
        ),
        (
            "doall (j, 0, 9) { A[j,2,4] = A[j,3,4]; }",
            "A[j,2,4] vs A[j,3,4]",
            false,
        ),
        (
            "doall (i, 0, 9) { A[2*i] = A[2*i+1]; }",
            "A[2i] vs A[2i+1]",
            false,
        ),
        (
            "doall (i, 0, 9) { A[i+2,2*i+4] = A[i+3,2*i+8]; }",
            "A[i+2,2i+4] vs A[i+3,2i+8]",
            false,
        ),
        (
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = B[i,j]; } }",
            "A[i,j] vs B[i,j]",
            false,
        ),
    ];
    let t = Table::new(&[
        ("pair", 28),
        ("unif.gen", 9),
        ("intersect", 9),
        ("unif.int", 9),
        ("paper", 6),
        ("ok", 3),
    ]);
    for (src, desc, expected) in cases {
        let nest = parse(src).unwrap();
        let refs = nest.all_refs();
        let (a, b) = (refs[0], refs[1]);
        let ug = uniformly_generated(a, b);
        let ix = intersecting(a, b);
        let ui = uniformly_intersecting(a, b);
        t.row(&[
            &desc,
            &ug,
            &ix,
            &ui,
            &expected,
            &if ui == expected { "yes" } else { "NO" },
        ]);
        assert_eq!(ui, expected, "{desc}");
    }
    println!("\nall classifications match Appendix B");
}
