//! E5: §3.5 / Figs. 7-8 — the cumulative footprint of the uniformly
//! intersecting pair `B[i+j,j]`, `B[i+j+1,j+2]`: Theorem 2's determinant
//! sum vs exact enumeration.

use alp::prelude::*;
use alp_bench::{header, rel_err, Table};

fn main() {
    header(
        "E5",
        "cumulative footprint (Theorem 2) vs exact enumeration",
    );
    let nest = parse(
        "doall (i, 0, 99) { doall (j, 0, 99) {
           A[i,j] = B[i+j,j] + B[i+j+1,j+2];
         } }",
    )
    .unwrap();
    let classes = classify(&nest);
    let b = classes.iter().find(|c| c.array == "B").unwrap();
    println!("class B: spread â = {}\n", b.spread());

    let t = Table::new(&[("tile L (rows)", 26), ("thm2", 7), ("exact", 7), ("err", 7)]);
    let tiles: Vec<IMat> = vec![
        IMat::from_rows(&[&[10, 4], &[2, 8]]),
        IMat::from_rows(&[&[8, 0], &[0, 8]]),
        IMat::from_rows(&[&[12, 12], &[6, 0]]),
        IMat::from_rows(&[&[16, 4], &[0, 4]]),
        IMat::from_rows(&[&[5, 5], &[5, -5]]),
    ];
    let mut max_err = 0.0f64;
    for l in tiles {
        let tile = Tile::general(l.clone());
        let thm2 = cumulative_footprint_general(&tile, b);
        let exact = cumulative_footprint_exact(&tile, b);
        let e = rel_err(thm2 as f64, exact as f64);
        max_err = max_err.max(e);
        t.row(&[
            &format!("{:?},{:?}", l.row(0).0, l.row(1).0),
            &thm2,
            &exact,
            &format!("{:.1}%", 100.0 * e),
        ]);
    }
    println!("\nmax relative error {:.1}% — the paper's approximation is \"reasonable\nif the constant terms are small compared to the tile size\" (§3.5)", 100.0 * max_err);
    assert!(
        max_err < 0.35,
        "Theorem 2 should stay in the right ballpark"
    );

    // Error shrinks as tiles grow (the asymptotic claim).
    println!("\nscaling: relative error vs tile size (square tiles)");
    let t = Table::new(&[("side", 6), ("thm2", 8), ("exact", 8), ("err", 7)]);
    for side in [4i128, 8, 16, 32, 64] {
        let tile = Tile::rect(&[side, side]);
        let thm2 = cumulative_footprint_general(&tile, b);
        let exact = cumulative_footprint_exact(&tile, b);
        t.row(&[
            &side,
            &thm2,
            &exact,
            &format!("{:.1}%", 100.0 * rel_err(thm2 as f64, exact as f64)),
        ]);
    }
}
