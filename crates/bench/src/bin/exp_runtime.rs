//! E-RT: native runtime wall-clock — the model-optimal tile shape vs
//! naive baselines at the same thread count, on real threads and real
//! `f64` arrays (not the simulator).
//!
//! Four experiments:
//!
//! * Example 8's 3-D stencil: `partition_rect`'s grid vs naive square
//!   blocks and row slabs;
//! * an additive matmul-style accumulate nest: uncontended `i,j` blocks
//!   vs a naive `k`-split whose tiles all CAS on the same output
//!   elements;
//! * a row reduction: `i`-split vs square blocks vs a contended
//!   `j`-split;
//! * Example 2's skewed 2-D nest: strips (the analytic model's choice)
//!   vs square blocks.
//!
//! Every configuration is validated bitwise against the sequential
//! reference before timing.  Timing runs do `WARMUP` untimed passes and
//! then `TRIALS` timed passes, reporting the minimum (the noise floor)
//! and the median; touch tracking stays off so the timing measures only
//! kernel execution.  A separate tracked run measures each tiling's
//! worst-tile distinct-line footprint next to the model's prediction.
//!
//! Before the cases run, the harness calibrates the hybrid latency
//! model on this machine (`fit_nest` over the same four nests) and
//! reports three rankings per case — analytic footprint cost,
//! calibrated hybrid cost, and measured wall time — plus an explicit
//! `inversion` flag whenever the analytic choice is measurably not the
//! fastest (the Example-2 defect this flag was built to expose).
//! Candidates whose walls differ by less than `NOISE_REL` count as
//! tied, so agreement is judged only on measurably ordered pairs.
//!
//! Two skewed cases (Examples 2 and 10) then time the best
//! parallelepiped candidate — executed natively as rectangular tiles in
//! `j = i·U` with `U⁻¹` composed into the kernels — against the
//! rectangular planner's choice, recording which model (calibrated or
//! analytic fallback) ranked the skewed candidates.
//!
//! A hardening check re-times Example 8's optimal tiling with the
//! executor's guards armed (deadline + cancel token + retry budget) to
//! show the fault-free overhead of the hardened path stays within
//! noise.  A final sweep drives `Compiler::compile_cached` over every
//! (nest, P) pair to measure the plan cache.  `--json` additionally
//! writes `BENCH_runtime.json` with walls, footprints, rankings, the
//! fitted coefficients, and the cache figures.

use alp::calibrate::grid_features;
use alp::prelude::*;
use alp::Compiler;
use alp_bench::{detected_cores, header, min_median, Table};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const TRIALS: usize = 7;
const WARMUP: usize = 2;
/// Walls within this relative distance count as tied: on an
/// oversubscribed or noisy box, orderings inside the noise band flip
/// run to run and prove nothing.
const NOISE_REL: f64 = 0.05;

struct GridResult {
    label: &'static str,
    grid: Vec<i128>,
    wall: Duration,
    wall_median: Duration,
    model_cost: f64,
    hybrid_cost: f64,
    measured_lines: u64,
    matches: bool,
}

struct CaseResult {
    name: &'static str,
    results: Vec<GridResult>,
    analytic_ranking: Vec<&'static str>,
    calibrated_ranking: Vec<&'static str>,
    measured_ranking: Vec<&'static str>,
    inversion: bool,
    calibrated_agrees: bool,
    degenerate_calibration: bool,
    speedup_first_over_fastest: f64,
}

/// `WARMUP` untimed passes, then best-of-`TRIALS` and median wall time
/// for one grid, with touch tracking off so the timing measures only
/// kernel execution.  A separate tracked run measures the worst tile's
/// distinct-line footprint, and a verified run checks bitwise equality
/// with the sequential reference.
fn bench_grid(
    nest: &LoopNest,
    grid: &[i128],
    label: &'static str,
    latency: &LatencyModel,
) -> GridResult {
    let exec = Executor::from_grid(nest, grid).expect("executable nest");
    let timing = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let outcome = exec.verify(42, &timing).expect("fault-free run succeeds");
    for _ in 0..WARMUP {
        let store = exec.seeded_store(42);
        exec.run(&store, &timing).expect("fault-free run");
    }
    let walls: Vec<Duration> = (0..TRIALS)
        .map(|_| {
            let store = exec.seeded_store(42);
            exec.run(&store, &timing).expect("fault-free run").wall
        })
        .collect();
    let (wall, wall_median) = min_median(&walls);
    let tracked = ExecOptions {
        track_touches: true,
        ..timing
    };
    let store = exec.seeded_store(42);
    let measured_lines = exec
        .run(&store, &tracked)
        .expect("fault-free run")
        .max_tile_footprint()
        .unwrap_or(0);
    let model = CostModel::from_nest(nest);
    let model_cost = model.cost_rect(exec.tile_extents()).to_f64();
    let features = grid_features(nest, &model, grid, 1).expect("benchmark grid is feasible");
    let hybrid_cost = latency.hybrid_cost(&features).to_f64();
    GridResult {
        label,
        grid: grid.to_vec(),
        wall,
        wall_median,
        model_cost,
        hybrid_cost,
        measured_lines,
        matches: outcome.matches_reference,
    }
}

/// Labels sorted ascending by a per-result score (stable: the input
/// order breaks exact ties).
fn ranking_by(results: &[GridResult], score: impl Fn(&GridResult) -> f64) -> Vec<&'static str> {
    let mut idx: Vec<usize> = (0..results.len()).collect();
    idx.sort_by(|&a, &b| {
        score(&results[a])
            .partial_cmp(&score(&results[b]))
            .expect("finite scores")
    });
    idx.into_iter().map(|i| results[i].label).collect()
}

/// True when `a` beats `b` by more than the noise band.
fn measurably_faster(a: Duration, b: Duration) -> bool {
    a.as_secs_f64() < b.as_secs_f64() * (1.0 - NOISE_REL)
}

fn run_case(
    name: &'static str,
    nest: &LoopNest,
    grids: Vec<(&'static str, Vec<i128>)>,
    latency: &LatencyModel,
) -> CaseResult {
    println!(
        "\n{name} ({} threads, min/median of {TRIALS} after {WARMUP} warmup):",
        THREADS
    );
    let t = Table::new(&[
        ("tiling", 16),
        ("grid", 14),
        ("wall-min", 11),
        ("wall-med", 11),
        ("model/tile", 10),
        ("hybrid-ns", 12),
        ("meas/tile", 9),
        ("bitwise", 7),
    ]);
    let results: Vec<GridResult> = grids
        .into_iter()
        .map(|(label, grid)| bench_grid(nest, &grid, label, latency))
        .collect();
    for r in &results {
        t.row(&[
            &r.label,
            &format!("{:?}", r.grid),
            &format!("{:.3?}", r.wall),
            &format!("{:.3?}", r.wall_median),
            &format!("{:.0}", r.model_cost),
            &format!("{:.0}", r.hybrid_cost),
            &r.measured_lines,
            &if r.matches { "ok" } else { "FAIL" },
        ]);
        assert!(r.matches, "{name}/{}: parallel != sequential", r.label);
    }

    let analytic_ranking = ranking_by(&results, |r| r.model_cost);
    // With the per-line and per-span coefficients fitted to zero every
    // candidate gets the same hybrid cost; a "calibrated" ranking would
    // just echo the input order.  Detect the tie and fall back to the
    // analytic order explicitly so the report never presents sort
    // stability as a prediction.
    let degenerate_calibration = results.len() > 1
        && results
            .windows(2)
            .all(|w| w[0].hybrid_cost == w[1].hybrid_cost);
    let calibrated_ranking = if degenerate_calibration {
        analytic_ranking.clone()
    } else {
        ranking_by(&results, |r| r.hybrid_cost)
    };
    let measured_ranking = ranking_by(&results, |r| r.wall.as_secs_f64());

    // The first listed tiling is the analytic model's choice; an
    // inversion means some baseline measurably beats it.
    let first = &results[0];
    let fastest = results
        .iter()
        .min_by_key(|r| r.wall)
        .expect("at least one tiling");
    let inversion = results
        .iter()
        .any(|r| measurably_faster(r.wall, first.wall));
    let speedup_first_over_fastest = fastest.wall.as_secs_f64() / first.wall.as_secs_f64();
    if inversion {
        eprintln!(
            "warning: {name}: inversion — model choice `{}` ({:.3?}) is not the \
             measured fastest; `{}` runs {:.2}x faster",
            first.label,
            first.wall,
            fastest.label,
            first.wall.as_secs_f64() / fastest.wall.as_secs_f64()
        );
    }

    // The calibrated ranking agrees when every measurably ordered pair
    // of walls is ordered the same way by its score.  Under a
    // degenerate calibration the score in force is the analytic
    // fallback — comparing the tied hybrid costs would report `false`
    // for every ordered pair regardless of what the fallback predicts.
    let score = |r: &GridResult| {
        if degenerate_calibration {
            r.model_cost
        } else {
            r.hybrid_cost
        }
    };
    let mut calibrated_agrees = true;
    for a in &results {
        for b in &results {
            if measurably_faster(a.wall, b.wall) && score(a) >= score(b) {
                calibrated_agrees = false;
            }
        }
    }

    let leanest = results.iter().min_by_key(|r| r.measured_lines).unwrap();
    println!(
        "fastest: {} at {:.3?}; smallest measured footprint: {} ({} lines/tile)",
        fastest.label, fastest.wall, leanest.label, leanest.measured_lines
    );
    println!(
        "rankings  analytic: {analytic_ranking:?}  calibrated: {calibrated_ranking:?}  \
         measured: {measured_ranking:?}"
    );
    println!(
        "calibrated ranking {} the measured ordering{}{}",
        if calibrated_agrees {
            "agrees with"
        } else {
            "DISAGREES with"
        },
        if inversion { "  [inversion]" } else { "" },
        if degenerate_calibration {
            "  [degenerate calibration: analytic fallback]"
        } else {
            ""
        }
    );
    CaseResult {
        name,
        results,
        analytic_ranking,
        calibrated_ranking,
        measured_ranking,
        inversion,
        calibrated_agrees,
        degenerate_calibration,
        speedup_first_over_fastest,
    }
}

struct SkewedCase {
    name: &'static str,
    /// Rows of the chosen unimodular `U` (j = i·U).
    u_rows: Vec<Vec<i128>>,
    /// Which model picked the skewed candidate: `"calibrated"` when the
    /// hybrid costs separate the candidates, `"analytic"` when the
    /// calibration is degenerate and the Theorem-2 order decided.
    ranked_by: &'static str,
    /// `[0]` = the skewed choice, `[1]` = the rectangular baseline.
    results: Vec<GridResult>,
    /// True when the rectangular baseline measurably beats the skewed
    /// choice — same noise band as the rectangular cases.
    inversion: bool,
    speedup_skewed_over_rect: f64,
}

/// Time the best skewed parallelepiped candidate — executed natively as
/// rectangular tiles in `j = i·U` with `U⁻¹` composed into the kernels —
/// against the rectangular planner's choice on the same nest, at the
/// same thread count and trial protocol as every other case.
fn bench_skewed_case(
    name: &'static str,
    nest: &LoopNest,
    p: i128,
    latency: &LatencyModel,
) -> SkewedCase {
    let timing = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let cands = skewed_candidates(nest, p, &ParaSearchConfig::default())
        .expect("nest has skewed candidates");
    let ranked = rank_skewed(nest, latency, &cands, 1).expect("skewed ranking");
    let degenerate = skewed_ranking_is_degenerate(&ranked);
    let (cand, ranked_by) = if degenerate {
        (&cands[0], "analytic")
    } else {
        (&cands[ranked[0].index], "calibrated")
    };

    let exec =
        Executor::from_transformed(nest, &cand.transform, &cand.grid).expect("skewed executable");
    let outcome = exec.verify(42, &timing).expect("skewed run succeeds");
    assert!(outcome.matches_reference, "{name}: skewed != sequential");
    for _ in 0..WARMUP {
        let store = exec.seeded_store(42);
        exec.run(&store, &timing).expect("fault-free run");
    }
    let walls: Vec<Duration> = (0..TRIALS)
        .map(|_| {
            let store = exec.seeded_store(42);
            exec.run(&store, &timing).expect("fault-free run").wall
        })
        .collect();
    let (wall, wall_median) = min_median(&walls);
    let tracked = ExecOptions {
        track_touches: true,
        ..timing
    };
    let store = exec.seeded_store(42);
    let measured_lines = exec
        .run(&store, &tracked)
        .expect("fault-free run")
        .max_tile_footprint()
        .unwrap_or(0);
    let features = skewed_grid_features(nest, cand, 1).expect("skewed features");
    let skewed_result = GridResult {
        label: "skewed",
        grid: cand.grid.clone(),
        wall,
        wall_median,
        model_cost: cand.analytic_cost as f64,
        hybrid_cost: latency.hybrid_cost(&features).to_f64(),
        measured_lines,
        matches: outcome.matches_reference,
    };

    let rect_grid = partition_rect(nest, p).proc_grid;
    let rect_result = bench_grid(nest, &rect_grid, "rect-optimal", latency);
    assert!(rect_result.matches, "{name}: rect != sequential");

    let inversion = measurably_faster(rect_result.wall, skewed_result.wall);
    let speedup_skewed_over_rect =
        rect_result.wall.as_secs_f64() / skewed_result.wall.as_secs_f64();
    let d = cand.transform.depth();
    let u_rows: Vec<Vec<i128>> = (0..d)
        .map(|r| (0..d).map(|c| cand.transform.u()[(r, c)]).collect())
        .collect();
    SkewedCase {
        name,
        u_rows,
        ranked_by,
        results: vec![skewed_result, rect_result],
        inversion,
        speedup_skewed_over_rect,
    }
}

fn report_skewed_cases(cases: &[SkewedCase]) {
    println!("\nskewed vs rectangular (native transformed execution, {THREADS} threads):");
    let t = Table::new(&[
        ("case", 28),
        ("tiling", 12),
        ("grid", 12),
        ("wall-min", 11),
        ("wall-med", 11),
        ("meas/tile", 9),
        ("bitwise", 7),
    ]);
    for c in cases {
        for r in &c.results {
            t.row(&[
                &c.name,
                &r.label,
                &format!("{:?}", r.grid),
                &format!("{:.3?}", r.wall),
                &format!("{:.3?}", r.wall_median),
                &r.measured_lines,
                &if r.matches { "ok" } else { "FAIL" },
            ]);
        }
        println!(
            "  {}: U = {:?} (ranked by {}), skewed/rect speedup {:.2}x{}",
            c.name,
            c.u_rows,
            c.ranked_by,
            c.speedup_skewed_over_rect,
            if c.inversion {
                "  [inversion: rect measurably faster]"
            } else {
                ""
            }
        );
    }
}

struct Hardening {
    plain: Duration,
    guarded: Duration,
    overhead_pct: f64,
}

/// Fault-free overhead of the hardened execution path on one tiling:
/// identical runs with and without the guards armed (a far-future
/// deadline, a live cancel token, and a retry budget).  The guards cost
/// one relaxed atomic load per `POLL_INTERVAL` kernel iterations plus a
/// clock read at tile boundaries, so best-of-N walls should agree to
/// within noise (the budget is 3%).
fn bench_hardening(nest: &LoopNest, grid: &[i128]) -> Hardening {
    const HARDENING_TRIALS: usize = 7;
    let exec = Executor::from_grid(nest, grid).expect("executable nest");
    let plain_opts = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let guarded_opts = ExecOptions {
        deadline: Some(Duration::from_secs(3600)),
        cancel: Some(CancelToken::new()),
        max_retries: 1,
        ..plain_opts.clone()
    };
    let best = |opts: &ExecOptions| {
        (0..HARDENING_TRIALS)
            .map(|_| {
                let store = exec.seeded_store(42);
                exec.run(&store, opts).expect("fault-free run").wall
            })
            .min()
            .expect("at least one trial")
    };
    // Interleave-resistant: measure plain after guarded so neither side
    // systematically benefits from cache warm-up.
    let _warmup = best(&plain_opts);
    let guarded = best(&guarded_opts);
    let plain = best(&plain_opts);
    let overhead_pct = (guarded.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0;
    Hardening {
        plain,
        guarded,
        overhead_pct,
    }
}

fn report_hardening(h: &Hardening) {
    println!("\nhardened-path overhead (example8 optimal tiling, fault-free):");
    println!(
        "  plain {:.3?}, guarded (deadline+cancel+retry armed) {:.3?}  ->  {:+.2}%",
        h.plain, h.guarded, h.overhead_pct
    );
}

struct CertCase {
    name: &'static str,
    grid: Vec<i128>,
    unlocked: bool,
    certify_ms: f64,
    atomic_wall: Duration,
    relaxed_wall: Option<Duration>,
    speedup: f64,
}

/// What the certified fast path is worth: for each accumulate nest ×
/// grid, prove (or refute) cross-tile write disjointness, then time the
/// default atomic-CAS accumulate path against the certificate-gated
/// relaxed-store path on identical tiles.  A grid the certifier refutes
/// (the contended k-split) records `unlocked: false` and times only the
/// atomic path — exactly what the executor would do.  Every relaxed run
/// is validated bitwise against the sequential reference before timing,
/// and the certify wall itself is recorded as the fast path's one-time
/// admission cost.
fn bench_cert_fastpath(nests: &[(&'static str, &LoopNest, Vec<i128>)]) -> Vec<CertCase> {
    let timing = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let best = |exec: &Executor| {
        for _ in 0..WARMUP {
            let store = exec.seeded_store(42);
            exec.run(&store, &timing).expect("fault-free run");
        }
        (0..TRIALS)
            .map(|_| {
                let store = exec.seeded_store(42);
                exec.run(&store, &timing).expect("fault-free run").wall
            })
            .min()
            .expect("at least one trial")
    };
    nests
        .iter()
        .map(|(name, nest, grid)| {
            let (_, chunks) = rect_tiles(nest, grid).expect("benchmark grid is feasible");
            let partition = RectPartition {
                tile_extents: chunks.iter().map(|c| c - 1).collect(),
                proc_grid: grid.clone(),
                cost: Rat::int(0),
            };
            let plan = PartitionPlan::build_with_partition(
                nest,
                grid.iter().product(),
                None,
                LegalityVerdict::Unchecked,
                partition,
                "bench-fixed-grid",
            )
            .expect("benchmark plan builds");
            let t0 = Instant::now();
            let report = certify(&plan).expect("benchmark plan certifies");
            let certify_ms = t0.elapsed().as_secs_f64() * 1e3;
            let unlocked = report.unlocks_fastpath();

            let atomic_exec = Executor::from_grid(nest, grid).expect("executable nest");
            let atomic_wall = best(&atomic_exec);
            let (relaxed_wall, speedup) = if unlocked {
                let mut relaxed_exec = Executor::from_grid(nest, grid).expect("executable nest");
                relaxed_exec.apply_certificate(true, report.certificate.idempotent);
                assert!(relaxed_exec.uses_relaxed_stores());
                let outcome = relaxed_exec
                    .verify(42, &timing)
                    .expect("relaxed run succeeds");
                assert!(
                    outcome.matches_reference,
                    "{name}: certified relaxed stores diverge from the sequential \
                     reference — the certificate proof is wrong"
                );
                let w = best(&relaxed_exec);
                (Some(w), atomic_wall.as_secs_f64() / w.as_secs_f64())
            } else {
                (None, 1.0)
            };
            CertCase {
                name,
                grid: grid.clone(),
                unlocked,
                certify_ms,
                atomic_wall,
                relaxed_wall,
                speedup,
            }
        })
        .collect()
}

fn report_cert_fastpath(cases: &[CertCase]) {
    println!("\ncertified fast path (relaxed vs atomic accumulate stores):");
    let t = Table::new(&[
        ("case", 24),
        ("grid", 14),
        ("certified", 9),
        ("certify-ms", 10),
        ("atomic", 11),
        ("relaxed", 11),
        ("speedup", 8),
    ]);
    for c in cases {
        t.row(&[
            &c.name,
            &format!("{:?}", c.grid),
            &if c.unlocked { "yes" } else { "REFUTED" },
            &format!("{:.3}", c.certify_ms),
            &format!("{:.3?}", c.atomic_wall),
            &c.relaxed_wall
                .map_or("-".to_string(), |w| format!("{w:.3?}")),
            &if c.unlocked {
                format!("{:.2}x", c.speedup)
            } else {
                "-".to_string()
            },
        ]);
    }
}

struct CacheSweep {
    keys: usize,
    warm_rounds: usize,
    cold_ms_per_compile: f64,
    warm_ms_per_compile: f64,
    speedup: f64,
    stats: CacheStats,
}

/// Drive `compile_cached` over every (nest, P) key: one cold round that
/// populates the cache, then `WARM_ROUNDS` rounds of pure hits.  The
/// warm path skips parsing-side analysis and the partition search
/// entirely and only re-runs alignment, placement, and code emission.
fn bench_plan_cache(nests: &[(&'static str, &LoopNest)]) -> CacheSweep {
    const WARM_ROUNDS: usize = 5;
    // Alewife-scale machine sizes: the partition search a cold compile
    // pays for grows with the factorization count of P.
    let procs: [i128; 3] = [64, 256, 512];
    let mut cache = PlanCache::new(64);
    let mut cold = Duration::ZERO;
    let mut warm = Duration::ZERO;
    let keys = nests.len() * procs.len();
    for round in 0..=WARM_ROUNDS {
        for (_, nest) in nests {
            for &p in &procs {
                let compiler = Compiler::new(p);
                let start = Instant::now();
                let result = compiler
                    .compile_cached((*nest).clone(), &mut cache)
                    .expect("sweep nests compile");
                let elapsed = start.elapsed();
                assert!(!result.code.is_empty());
                if round == 0 {
                    cold += elapsed;
                } else {
                    warm += elapsed;
                }
            }
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, keys, "every key misses exactly once");
    assert_eq!(stats.hits as usize, keys * WARM_ROUNDS, "then always hits");
    let cold_ms_per_compile = cold.as_secs_f64() * 1e3 / keys as f64;
    let warm_ms_per_compile = warm.as_secs_f64() * 1e3 / (keys * WARM_ROUNDS) as f64;
    CacheSweep {
        keys,
        warm_rounds: WARM_ROUNDS,
        cold_ms_per_compile,
        warm_ms_per_compile,
        speedup: cold_ms_per_compile / warm_ms_per_compile,
        stats,
    }
}

fn report_plan_cache(sweep: &CacheSweep) {
    println!(
        "\nplan cache ({} keys, {} warm rounds):",
        sweep.keys, sweep.warm_rounds
    );
    println!(
        "  cold compile {:.3} ms, warm compile {:.3} ms  ->  {:.1}x warm speedup",
        sweep.cold_ms_per_compile, sweep.warm_ms_per_compile, sweep.speedup
    );
    println!(
        "  hits {}  misses {}  evictions {}  hit rate {:.3}",
        sweep.stats.hits,
        sweep.stats.misses,
        sweep.stats.evictions,
        sweep.stats.hit_rate()
    );
}

fn json_escape_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn json_labels(labels: &[&'static str]) -> String {
    let quoted: Vec<String> = labels.iter().map(|l| format!("\"{l}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

fn write_json(
    cases: &[CaseResult],
    skewed: &[SkewedCase],
    latency: &LatencyModel,
    hardening: &Hardening,
    certs: &[CertCase],
    sweep: &CacheSweep,
) {
    let cores = detected_cores();
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"runtime\",\n");
    s.push_str(&format!("  \"threads\": {THREADS},\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"oversubscribed\": {},\n", THREADS > cores));
    s.push_str(&format!("  \"trials\": {TRIALS},\n"));
    s.push_str(&format!("  \"warmup\": {WARMUP},\n"));
    s.push_str(&format!("  \"noise_rel\": {NOISE_REL},\n"));
    s.push_str("  \"calibration\": {\n");
    for (key, r) in [
        ("per_tile_ns", &latency.per_tile_ns),
        ("per_line_ns", &latency.per_line_ns),
        ("per_span_line_ns", &latency.per_span_line_ns),
        ("per_iter_ns", &latency.per_iter_ns),
        ("per_rep_ns", &latency.per_rep_ns),
    ] {
        s.push_str(&format!(
            "    \"{key}\": \"{}/{}\", \"{key}_f64\": {:.6},\n",
            r.num(),
            r.den(),
            r.to_f64()
        ));
    }
    s.push_str(&format!("    \"samples\": {}\n  }},\n", latency.samples));
    s.push_str("  \"cases\": [\n");
    for (ci, case) in cases.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", case.name));
        s.push_str("      \"tilings\": [\n");
        for (ri, r) in case.results.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"label\": \"{}\", \"grid\": {:?}, \"wall_ms\": {}, \
                 \"wall_median_ms\": {}, \"model_cost_per_tile\": {:.1}, \
                 \"hybrid_cost_ns\": {:.1}, \"measured_max_tile_lines\": {}, \
                 \"matches_reference\": {}}}{}\n",
                r.label,
                r.grid,
                json_escape_ms(r.wall),
                json_escape_ms(r.wall_median),
                r.model_cost,
                r.hybrid_cost,
                r.measured_lines,
                r.matches,
                if ri + 1 < case.results.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!(
            "      \"analytic_ranking\": {},\n",
            json_labels(&case.analytic_ranking)
        ));
        s.push_str(&format!(
            "      \"calibrated_ranking\": {},\n",
            json_labels(&case.calibrated_ranking)
        ));
        s.push_str(&format!(
            "      \"measured_ranking\": {},\n",
            json_labels(&case.measured_ranking)
        ));
        s.push_str(&format!("      \"inversion\": {},\n", case.inversion));
        s.push_str(&format!(
            "      \"calibrated_agrees_with_measured\": {},\n",
            case.calibrated_agrees
        ));
        s.push_str(&format!(
            "      \"degenerate_calibration\": {},\n",
            case.degenerate_calibration
        ));
        s.push_str(&format!(
            "      \"speedup_first_over_fastest\": {:.3},\n",
            case.speedup_first_over_fastest
        ));
        let opt = &case.results[0];
        let slowest = case.results[1..]
            .iter()
            .max_by_key(|r| r.wall)
            .unwrap_or(opt);
        s.push_str(&format!(
            "      \"speedup_first_over_slowest\": {:.3}\n",
            slowest.wall.as_secs_f64() / opt.wall.as_secs_f64()
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if ci + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"skewed_cases\": [\n");
    for (ci, c) in skewed.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", c.name));
        s.push_str(&format!("      \"u\": {:?},\n", c.u_rows));
        s.push_str(&format!(
            "      \"skewed_ranked_by\": \"{}\",\n",
            c.ranked_by
        ));
        s.push_str("      \"tilings\": [\n");
        for (ri, r) in c.results.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"label\": \"{}\", \"grid\": {:?}, \"wall_ms\": {}, \
                 \"wall_median_ms\": {}, \"model_cost_per_tile\": {:.1}, \
                 \"hybrid_cost_ns\": {:.1}, \"measured_max_tile_lines\": {}, \
                 \"matches_reference\": {}}}{}\n",
                r.label,
                r.grid,
                json_escape_ms(r.wall),
                json_escape_ms(r.wall_median),
                r.model_cost,
                r.hybrid_cost,
                r.measured_lines,
                r.matches,
                if ri + 1 < c.results.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!("      \"inversion\": {},\n", c.inversion));
        s.push_str(&format!(
            "      \"speedup_skewed_over_rect\": {:.3}\n",
            c.speedup_skewed_over_rect
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if ci + 1 < skewed.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"hardening\": {{\"case\": \"example8-stencil-64^3/optimal\", \
         \"plain_wall_ms\": {}, \"guarded_wall_ms\": {}, \"overhead_pct\": {:.2}}},\n",
        json_escape_ms(hardening.plain),
        json_escape_ms(hardening.guarded),
        hardening.overhead_pct
    ));
    s.push_str("  \"cert_fastpath\": [\n");
    for (ci, c) in certs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"case\": \"{}\", \"grid\": {:?}, \"fastpath_unlocked\": {}, \
             \"certify_ms\": {:.3}, \"atomic_wall_ms\": {}, \"relaxed_wall_ms\": {}, \
             \"speedup_relaxed_over_atomic\": {:.3}}}{}\n",
            c.name,
            c.grid,
            c.unlocked,
            c.certify_ms,
            json_escape_ms(c.atomic_wall),
            c.relaxed_wall.map_or("null".to_string(), json_escape_ms),
            c.speedup,
            if ci + 1 < certs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"plan_cache\": {{\"keys\": {}, \"warm_rounds\": {}, \
         \"cold_ms_per_compile\": {:.3}, \"warm_ms_per_compile\": {:.3}, \
         \"warm_speedup\": {:.1}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"hit_rate\": {:.3}}}\n",
        sweep.keys,
        sweep.warm_rounds,
        sweep.cold_ms_per_compile,
        sweep.warm_ms_per_compile,
        sweep.speedup,
        sweep.stats.hits,
        sweep.stats.misses,
        sweep.stats.evictions,
        sweep.stats.hit_rate()
    ));
    s.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &s).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    header("E-RT", "native runtime: model-optimal vs naive tilings");
    let cores = detected_cores();
    if cores < THREADS {
        eprintln!(
            "warning: oversubscribed: {THREADS} threads on {cores} core(s) — wall \
             times reflect interleaved execution, not parallel speedup"
        );
    }

    // Example 8's stencil.  The first tiling is partition_rect's choice;
    // the baselines get the same processor count.
    let ex8 = parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    // Accumulates: every iteration adds into C[i,j].  Blocking over i,j
    // keeps each output element on one thread (uncontended CAS); the
    // naive k-split makes all 16 tiles hammer the same C elements.
    let acc = parse(
        "doall (i, 0, 127) { doall (j, 0, 127) { doall (k, 0, 127) {
           C[i,j] += A[i,k] + B[k,j];
         } } }",
    )
    .unwrap();
    // Row reduction: S[i] += A[i,j].  partition_rect splits the i axis
    // (smallest footprint, and each S element stays on one thread);
    // naive square blocks make 4 threads CAS the same S rows
    // concurrently, and a j-split makes all 16 collide.
    let red = parse(
        "doall (i, 0, 127) { doall (j, 0, 8191) {
           S[i] += A[i,j];
         } }",
    )
    .unwrap();
    // Example 2's skewed references: strips (the paper's partition a)
    // vs square blocks, scaled up to make the wall time measurable.
    let ex2 = parse(
        "doall (i, 101, 612) { doall (j, 1, 512) {
           A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
         } }",
    )
    .unwrap();

    // Calibrate the hybrid latency model on this machine by probing the
    // same nests the cases measure, so the calibrated ranking is a real
    // prediction of the walls below (fit on per-tile busy times, then
    // asked to order whole-grid walls).
    // Probe at the detected core count, not the benchmark thread count:
    // on an oversubscribed box per-tile busy times measured under 8:1
    // interleaving are dominated by scheduler noise and the fit
    // collapses into its intercept.
    println!(
        "\ncalibrating hybrid latency model (probing 4 nests at p=16, {} thread(s))...",
        cores.min(THREADS)
    );
    let probe_cfg = ProbeConfig {
        threads: cores.min(THREADS),
        trials: 3,
        warmup: 1,
        line_size: 1,
        seed: 42,
        max_grids: 8,
    };
    let latency = fit_nest(
        &[(&ex8, 16), (&acc, 16), (&red, 16), (&ex2, 16)],
        &probe_cfg,
    )
    .expect("calibration fit succeeds");
    println!(
        "fitted over {} samples: per-tile {:.1} ns, per-line {:.3} ns, \
         per-span-line {:.3} ns, per-iter {:.3} ns, per-rep {:.1} ns",
        latency.samples,
        latency.per_tile_ns.to_f64(),
        latency.per_line_ns.to_f64(),
        latency.per_span_line_ns.to_f64(),
        latency.per_iter_ns.to_f64(),
        latency.per_rep_ns.to_f64()
    );

    let mut cases = Vec::new();

    let optimal = partition_rect(&ex8, 16).proc_grid;
    let square = naive_partition(&ex8, 16, NaiveShape::SquareBlocks)
        .expect("square blocks")
        .proc_grid;
    let mut grids = vec![("optimal", optimal.clone())];
    if square != optimal {
        grids.push(("square", square));
    }
    grids.push(("row-slabs", vec![16, 1, 1]));
    cases.push(run_case("example8-stencil-64^3", &ex8, grids, &latency));

    cases.push(run_case(
        "accumulate-matmul-128^3",
        &acc,
        vec![("ij-blocks", vec![4, 4, 1]), ("k-split", vec![1, 1, 16])],
        &latency,
    ));

    let red_opt = partition_rect(&red, 16).proc_grid;
    let red_square = naive_partition(&red, 16, NaiveShape::SquareBlocks)
        .expect("square blocks")
        .proc_grid;
    cases.push(run_case(
        "row-reduction-128x8192",
        &red,
        vec![
            ("optimal", red_opt),
            ("square", red_square),
            ("j-split", vec![1, 16]),
        ],
        &latency,
    ));

    cases.push(run_case(
        "example2-skewed-512^2",
        &ex2,
        vec![("strips", vec![1, 16]), ("blocks", vec![4, 4])],
        &latency,
    ));

    let agreeing = cases.iter().filter(|c| c.calibrated_agrees).count();
    println!(
        "\ncalibrated ranking agrees with measured ordering on {agreeing}/{} cases",
        cases.len()
    );

    // Example 10's doubly-skewed references (B wants i±j, C wants
    // i+2j): the parallelepiped search finds a non-identity basis for
    // both nests, and the runtime executes it natively.
    let ex10 = parse(
        "doall (i, 1, 60) { doall (j, 1, 60) {
           A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2] + C[i,2*i,i+2*j-1]
                  + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
         } }",
    )
    .unwrap();
    let skewed_cases = vec![
        bench_skewed_case("example2-skewed-vs-rect-512^2", &ex2, 16, &latency),
        bench_skewed_case("example10-skewed-vs-rect-60^2", &ex10, 16, &latency),
    ];
    report_skewed_cases(&skewed_cases);

    let hardening = bench_hardening(&ex8, &optimal);
    report_hardening(&hardening);

    // The certified fast path pays off exactly where the default path
    // pays for atomicity: accumulate nests.  The red i-split and acc
    // ij-blocks certify write-disjoint (one owner per output element);
    // the contended k-split is refuted and must stay on the CAS path.
    let certs = bench_cert_fastpath(&[
        ("accumulate-ij-blocks", &acc, vec![4, 4, 1]),
        ("row-reduction-i-split", &red, vec![16, 1]),
        ("accumulate-k-split", &acc, vec![1, 1, 16]),
    ]);
    report_cert_fastpath(&certs);

    let sweep = bench_plan_cache(&[
        ("example8", &ex8),
        ("accumulate", &acc),
        ("reduction", &red),
        ("example2", &ex2),
    ]);
    report_plan_cache(&sweep);

    if json {
        write_json(&cases, &skewed_cases, &latency, &hardening, &certs, &sweep);
    }
}
