//! E-RT: native runtime wall-clock — the model-optimal tile shape vs
//! naive baselines at the same thread count, on real threads and real
//! `f64` arrays (not the simulator).
//!
//! Three experiments:
//!
//! * Example 8's 3-D stencil: `partition_rect`'s grid vs naive square
//!   blocks and row slabs;
//! * an additive matmul-style accumulate nest: uncontended `i,j` blocks
//!   vs a naive `k`-split whose tiles all CAS on the same output
//!   elements;
//! * Example 2's skewed 2-D nest: strips vs square blocks.
//!
//! Every configuration is validated bitwise against the sequential
//! reference before timing, and every tiling also reports its
//! *measured* worst-tile distinct-line footprint next to the model's
//! prediction — on machines with fewer cores than threads the wall
//! times cannot show parallel effects, but the footprint ordering
//! (what the paper's model optimizes) is measured on the real
//! execution either way.  A hardening check re-times Example 8's
//! optimal tiling with the executor's guards armed (deadline + cancel
//! token + retry budget) to show the fault-free overhead of the
//! hardened path stays within noise.  A final sweep drives `Compiler::compile_cached`
//! over every (nest, P) pair to measure the plan cache: cold compiles
//! (analysis + partition search) vs warm hits that replay the stored
//! `PartitionPlan`.  `--json` additionally writes `BENCH_runtime.json`
//! with the wall time and footprint per tiling plus the cache figures.

use alp::prelude::*;
use alp::Compiler;
use alp_bench::{header, Table};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const TRIALS: usize = 3;

struct GridResult {
    label: &'static str,
    grid: Vec<i128>,
    wall: Duration,
    model_cost: f64,
    measured_lines: u64,
    matches: bool,
}

/// Best-of-`TRIALS` wall time for one grid, with touch tracking off so
/// the timing measures only kernel execution.  A separate tracked run
/// measures the worst tile's distinct-line footprint, and a verified
/// run checks bitwise equality with the sequential reference.
fn bench_grid(nest: &LoopNest, grid: &[i128], label: &'static str) -> GridResult {
    let exec = Executor::from_grid(nest, grid).expect("executable nest");
    let timing = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let outcome = exec.verify(42, &timing).expect("fault-free run succeeds");
    let mut wall = outcome.report.wall;
    for _ in 1..TRIALS {
        let store = exec.seeded_store(42);
        wall = wall.min(exec.run(&store, &timing).expect("fault-free run").wall);
    }
    let tracked = ExecOptions {
        track_touches: true,
        ..timing
    };
    let store = exec.seeded_store(42);
    let measured_lines = exec
        .run(&store, &tracked)
        .expect("fault-free run")
        .max_tile_footprint()
        .unwrap_or(0);
    let model_cost = CostModel::from_nest(nest)
        .cost_rect(exec.tile_extents())
        .to_f64();
    GridResult {
        label,
        grid: grid.to_vec(),
        wall,
        model_cost,
        measured_lines,
        matches: outcome.matches_reference,
    }
}

fn run_case(
    name: &'static str,
    nest: &LoopNest,
    grids: Vec<(&'static str, Vec<i128>)>,
) -> (&'static str, Vec<GridResult>) {
    println!("\n{name} ({} threads, best of {TRIALS}):", THREADS);
    let t = Table::new(&[
        ("tiling", 16),
        ("grid", 14),
        ("wall", 12),
        ("model/tile", 10),
        ("meas/tile", 9),
        ("bitwise", 7),
    ]);
    let results: Vec<GridResult> = grids
        .into_iter()
        .map(|(label, grid)| bench_grid(nest, &grid, label))
        .collect();
    for r in &results {
        t.row(&[
            &r.label,
            &format!("{:?}", r.grid),
            &format!("{:.3?}", r.wall),
            &format!("{:.0}", r.model_cost),
            &r.measured_lines,
            &if r.matches { "ok" } else { "FAIL" },
        ]);
        assert!(r.matches, "{name}/{}: parallel != sequential", r.label);
    }
    let fastest = results.iter().min_by_key(|r| r.wall).unwrap();
    let leanest = results.iter().min_by_key(|r| r.measured_lines).unwrap();
    println!(
        "fastest: {} at {:.3?}; smallest measured footprint: {} ({} lines/tile)",
        fastest.label, fastest.wall, leanest.label, leanest.measured_lines
    );
    (name, results)
}

struct Hardening {
    plain: Duration,
    guarded: Duration,
    overhead_pct: f64,
}

/// Fault-free overhead of the hardened execution path on one tiling:
/// identical runs with and without the guards armed (a far-future
/// deadline, a live cancel token, and a retry budget).  The guards cost
/// one relaxed atomic load per `POLL_INTERVAL` kernel iterations plus a
/// clock read at tile boundaries, so best-of-N walls should agree to
/// within noise (the budget is 3%).
fn bench_hardening(nest: &LoopNest, grid: &[i128]) -> Hardening {
    const HARDENING_TRIALS: usize = 7;
    let exec = Executor::from_grid(nest, grid).expect("executable nest");
    let plain_opts = ExecOptions {
        threads: THREADS,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: false,
        ..ExecOptions::default()
    };
    let guarded_opts = ExecOptions {
        deadline: Some(Duration::from_secs(3600)),
        cancel: Some(CancelToken::new()),
        max_retries: 1,
        ..plain_opts.clone()
    };
    let best = |opts: &ExecOptions| {
        (0..HARDENING_TRIALS)
            .map(|_| {
                let store = exec.seeded_store(42);
                exec.run(&store, opts).expect("fault-free run").wall
            })
            .min()
            .expect("at least one trial")
    };
    // Interleave-resistant: measure plain after guarded so neither side
    // systematically benefits from cache warm-up.
    let _warmup = best(&plain_opts);
    let guarded = best(&guarded_opts);
    let plain = best(&plain_opts);
    let overhead_pct = (guarded.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0;
    Hardening {
        plain,
        guarded,
        overhead_pct,
    }
}

fn report_hardening(h: &Hardening) {
    println!("\nhardened-path overhead (example8 optimal tiling, fault-free):");
    println!(
        "  plain {:.3?}, guarded (deadline+cancel+retry armed) {:.3?}  ->  {:+.2}%",
        h.plain, h.guarded, h.overhead_pct
    );
}

struct CacheSweep {
    keys: usize,
    warm_rounds: usize,
    cold_ms_per_compile: f64,
    warm_ms_per_compile: f64,
    speedup: f64,
    stats: CacheStats,
}

/// Drive `compile_cached` over every (nest, P) key: one cold round that
/// populates the cache, then `WARM_ROUNDS` rounds of pure hits.  The
/// warm path skips parsing-side analysis and the partition search
/// entirely and only re-runs alignment, placement, and code emission.
fn bench_plan_cache(nests: &[(&'static str, &LoopNest)]) -> CacheSweep {
    const WARM_ROUNDS: usize = 5;
    // Alewife-scale machine sizes: the partition search a cold compile
    // pays for grows with the factorization count of P.
    let procs: [i128; 3] = [64, 256, 512];
    let mut cache = PlanCache::new(64);
    let mut cold = Duration::ZERO;
    let mut warm = Duration::ZERO;
    let keys = nests.len() * procs.len();
    for round in 0..=WARM_ROUNDS {
        for (_, nest) in nests {
            for &p in &procs {
                let compiler = Compiler::new(p);
                let start = Instant::now();
                let result = compiler
                    .compile_cached((*nest).clone(), &mut cache)
                    .expect("sweep nests compile");
                let elapsed = start.elapsed();
                assert!(!result.code.is_empty());
                if round == 0 {
                    cold += elapsed;
                } else {
                    warm += elapsed;
                }
            }
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, keys, "every key misses exactly once");
    assert_eq!(stats.hits as usize, keys * WARM_ROUNDS, "then always hits");
    let cold_ms_per_compile = cold.as_secs_f64() * 1e3 / keys as f64;
    let warm_ms_per_compile = warm.as_secs_f64() * 1e3 / (keys * WARM_ROUNDS) as f64;
    CacheSweep {
        keys,
        warm_rounds: WARM_ROUNDS,
        cold_ms_per_compile,
        warm_ms_per_compile,
        speedup: cold_ms_per_compile / warm_ms_per_compile,
        stats,
    }
}

fn report_plan_cache(sweep: &CacheSweep) {
    println!(
        "\nplan cache ({} keys, {} warm rounds):",
        sweep.keys, sweep.warm_rounds
    );
    println!(
        "  cold compile {:.3} ms, warm compile {:.3} ms  ->  {:.1}x warm speedup",
        sweep.cold_ms_per_compile, sweep.warm_ms_per_compile, sweep.speedup
    );
    println!(
        "  hits {}  misses {}  evictions {}  hit rate {:.3}",
        sweep.stats.hits,
        sweep.stats.misses,
        sweep.stats.evictions,
        sweep.stats.hit_rate()
    );
}

fn json_escape_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn write_json(
    cases: &[(&'static str, Vec<GridResult>)],
    hardening: &Hardening,
    sweep: &CacheSweep,
) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"runtime\",\n");
    s.push_str(&format!("  \"threads\": {THREADS},\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"trials\": {TRIALS},\n"));
    s.push_str("  \"cases\": [\n");
    for (ci, (name, results)) in cases.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{name}\",\n"));
        s.push_str("      \"tilings\": [\n");
        for (ri, r) in results.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"label\": \"{}\", \"grid\": {:?}, \"wall_ms\": {}, \
                 \"model_cost_per_tile\": {:.1}, \"measured_max_tile_lines\": {}, \
                 \"matches_reference\": {}}}{}\n",
                r.label,
                r.grid,
                json_escape_ms(r.wall),
                r.model_cost,
                r.measured_lines,
                r.matches,
                if ri + 1 < results.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        let opt = &results[0];
        let naive = results[1..]
            .iter()
            .max_by_key(|r| r.wall)
            .unwrap_or(&results[0]);
        s.push_str(&format!(
            "      \"speedup_first_over_slowest\": {:.3}\n",
            naive.wall.as_secs_f64() / opt.wall.as_secs_f64()
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if ci + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"hardening\": {{\"case\": \"example8-stencil-64^3/optimal\", \
         \"plain_wall_ms\": {}, \"guarded_wall_ms\": {}, \"overhead_pct\": {:.2}}},\n",
        json_escape_ms(hardening.plain),
        json_escape_ms(hardening.guarded),
        hardening.overhead_pct
    ));
    s.push_str(&format!(
        "  \"plan_cache\": {{\"keys\": {}, \"warm_rounds\": {}, \
         \"cold_ms_per_compile\": {:.3}, \"warm_ms_per_compile\": {:.3}, \
         \"warm_speedup\": {:.1}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"hit_rate\": {:.3}}}\n",
        sweep.keys,
        sweep.warm_rounds,
        sweep.cold_ms_per_compile,
        sweep.warm_ms_per_compile,
        sweep.speedup,
        sweep.stats.hits,
        sweep.stats.misses,
        sweep.stats.evictions,
        sweep.stats.hit_rate()
    ));
    s.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &s).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    header("E-RT", "native runtime: model-optimal vs naive tilings");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < THREADS {
        println!(
            "note: {cores} core(s) available for {THREADS} threads — wall times \
             reflect interleaved execution, not parallel speedup"
        );
    }
    let mut cases = Vec::new();

    // Example 8's stencil.  The first tiling is partition_rect's choice;
    // the baselines get the same processor count.
    let ex8 = parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    let optimal = partition_rect(&ex8, 16).proc_grid;
    let square = naive_partition(&ex8, 16, NaiveShape::SquareBlocks)
        .expect("square blocks")
        .proc_grid;
    let mut grids = vec![("optimal", optimal.clone())];
    if square != optimal {
        grids.push(("square", square));
    }
    grids.push(("row-slabs", vec![16, 1, 1]));
    cases.push(run_case("example8-stencil-64^3", &ex8, grids));

    // Accumulates: every iteration adds into C[i,j].  Blocking over i,j
    // keeps each output element on one thread (uncontended CAS); the
    // naive k-split makes all 16 tiles hammer the same C elements.
    let acc = parse(
        "doall (i, 0, 127) { doall (j, 0, 127) { doall (k, 0, 127) {
           C[i,j] += A[i,k] + B[k,j];
         } } }",
    )
    .unwrap();
    cases.push(run_case(
        "accumulate-matmul-128^3",
        &acc,
        vec![("ij-blocks", vec![4, 4, 1]), ("k-split", vec![1, 1, 16])],
    ));

    // Row reduction: S[i] += A[i,j].  partition_rect splits the i axis
    // (smallest footprint, and each S element stays on one thread);
    // naive square blocks make 4 threads CAS the same S rows
    // concurrently, and a j-split makes all 16 collide.
    let red = parse(
        "doall (i, 0, 127) { doall (j, 0, 8191) {
           S[i] += A[i,j];
         } }",
    )
    .unwrap();
    let red_opt = partition_rect(&red, 16).proc_grid;
    let red_square = naive_partition(&red, 16, NaiveShape::SquareBlocks)
        .expect("square blocks")
        .proc_grid;
    cases.push(run_case(
        "row-reduction-128x8192",
        &red,
        vec![
            ("optimal", red_opt),
            ("square", red_square),
            ("j-split", vec![1, 16]),
        ],
    ));

    // Example 2's skewed references: strips (the paper's partition a)
    // vs square blocks, scaled up to make the wall time measurable.
    let ex2 = parse(
        "doall (i, 101, 612) { doall (j, 1, 512) {
           A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
         } }",
    )
    .unwrap();
    cases.push(run_case(
        "example2-skewed-512^2",
        &ex2,
        vec![("strips", vec![1, 16]), ("blocks", vec![4, 4])],
    ));

    let hardening = bench_hardening(&ex8, &optimal);
    report_hardening(&hardening);

    let sweep = bench_plan_cache(&[
        ("example8", &ex8),
        ("accumulate", &acc),
        ("reduction", &red),
        ("example2", &ex2),
    ]);
    report_plan_cache(&sweep);

    if json {
        write_json(&cases, &hardening, &sweep);
    }
}
