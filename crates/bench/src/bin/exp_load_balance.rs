//! E18 (extension): the load-balance side of the equal-size-tiles
//! constraint (§2.1) — how the three partition families trade traffic
//! against balance.

use alp::prelude::*;
use alp_bench::{header, Table};
use alp_codegen::assignment_stats;

fn main() {
    header(
        "E18",
        "load balance: rectangles vs slabs vs parallelepipeds",
    );
    let src = "doall (i, 1, 64) { doall (j, 1, 64) {
                 A[i,j] = B[i,j] + B[i+1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let p = 16i128;

    let t = Table::new(&[
        ("partition", 26),
        ("tiles", 6),
        ("min", 6),
        ("max", 6),
        ("imbalance", 9),
        ("misses", 8),
    ]);

    // Rectangle.
    let rect = partition_rect(&nest, p);
    let ra = assign_rect(&nest, &rect.proc_grid);
    let rs = assignment_stats(&ra);
    let rr = run_nest(&nest, &ra, MachineConfig::uniform(p as usize), &UniformHome);
    t.row(&[
        &format!("rect {:?}", rect.proc_grid),
        &rs.nonempty,
        &rs.min,
        &rs.max,
        &format!("{:.3}", rs.imbalance),
        &rr.total_cold_misses(),
    ]);

    // Communication-free slabs.
    let normals = communication_free_normals(&nest);
    let sa = assign_slabs(&nest, &normals[0], p);
    let ss = assignment_stats(&sa);
    let sr = run_nest(&nest, &sa, MachineConfig::uniform(p as usize), &UniformHome);
    t.row(&[
        &format!("slabs h={}", normals[0]),
        &ss.nonempty,
        &ss.min,
        &ss.max,
        &format!("{:.3}", ss.imbalance),
        &sr.total_cold_misses(),
    ]);

    // Parallelepiped cells (lattice tiling, boundary fragments and all).
    let para = optimize_parallelepiped(&nest, p, &ParaSearchConfig::default());
    let (pa, cells) = assign_para(&nest, para.tile.l_matrix());
    let ps = assignment_stats(&pa);
    let procs = pa.len().max(1);
    let pr = run_nest(
        &nest,
        &pa,
        MachineConfig::uniform(procs.min(128)),
        &UniformHome,
    );
    t.row(&[
        &format!("para cells ({} tiles)", cells.len()),
        &ps.nonempty,
        &ps.min,
        &ps.max,
        &format!("{:.3}", ps.imbalance),
        &pr.total_cold_misses(),
    ]);

    println!(
        "\nthe paper keeps rectangles 'because it is easy to produce efficient\n\
         code' and because parallelogram load balancing 'is harder' (§3.1):\n\
         measured — rectangles balance perfectly ({:.3}), slabs stay close\n\
         ({:.3}), raw parallelepiped lattice cells fragment at the iteration\n\
         space boundary ({:.3} over {} cells for {} processors).",
        rs.imbalance,
        ss.imbalance,
        ps.imbalance,
        cells.len(),
        p
    );
    assert!(rs.imbalance <= ss.imbalance);
    assert!(ss.imbalance <= ps.imbalance + 1.0);
}
