//! E17 (extension): program-level partitioning — the common-grid vs
//! per-phase-plus-redistribution decision for multi-phase programs
//! (§4's compiler setting).

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E17", "multi-phase programs: common grid vs redistribution");
    let cases: Vec<(&str, &str)> = vec![
        (
            "ADI row+col sweeps (shared A)",
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+1] + A[i,j+2]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+1,j] + A[i+2,j]; } }",
        ),
        (
            "independent phases (A then B)",
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+3]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { B[i,j] = B[i+3,j]; } }",
        ),
        (
            "same-preference phases",
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+2,j]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+4,j]; } }",
        ),
        (
            "tiny array, huge conflict",
            "doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i,j+4] + A[i,j+5]; } }
             doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i+4,j] + A[i+5,j]; } }",
        ),
    ];

    let t = Table::new(&[
        ("program", 30),
        ("strategy", 10),
        ("grids", 22),
        ("cost", 8),
        ("alt cost", 8),
        ("redist", 7),
    ]);
    for (name, src) in cases {
        let nests = parse_program(src).unwrap();
        let prog = partition_program(&nests, 16);
        t.row(&[
            &name,
            &format!("{:?}", prog.strategy),
            &format!(
                "{:?}",
                prog.phases
                    .iter()
                    .map(|p| p.proc_grid.clone())
                    .collect::<Vec<_>>()
            ),
            &prog.total_cost,
            &prog.alternative_cost,
            &prog.redistribution,
        ]);
        assert!(prog.total_cost <= prog.alternative_cost);
    }

    println!(
        "\nconflicting phases over a shared array choose the compromise grid\n\
         (redistribution dominates); phases over disjoint arrays or with the\n\
         same preference keep their solo optima at zero redistribution."
    );
}
