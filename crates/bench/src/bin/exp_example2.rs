//! E2: Example 2 / Fig. 3 — partition a (strips) vs partition b
//! (blocks) on 100 processors.
//!
//! Paper: 104 vs 140 cache misses per tile (B-class footprints), and
//! partition a has zero coherence traffic.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E2", "Example 2 / Fig. 3: strips vs blocks, 100 processors");
    let src = "doall (i, 101, 200) { doall (j, 1, 100) {
                 A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
               } }";
    let nest = parse(src).unwrap();
    let model = CostModel::from_nest(&nest);

    let t = Table::new(&[
        ("partition", 18),
        ("model/tile", 10),
        ("sim/tile", 9),
        ("B-class", 8),
        ("paper", 6),
        ("invalidations", 13),
        ("coherence", 9),
    ]);
    for (name, grid, paper) in [
        ("a: strips 1x100", vec![1i128, 100], 104i128),
        ("b: blocks 10x10", vec![10, 10], 140),
    ] {
        let extents: Vec<i128> = grid
            .iter()
            .zip([100i128, 100])
            .map(|(&g, n)| (n + g - 1) / g - 1)
            .collect();
        let modeled = model.cost_rect(&extents);
        let assignment = assign_rect(&nest, &grid);
        let report = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(100),
            &UniformHome,
        );
        let per_tile = report.total_cold_misses() / 100;
        let b_class = per_tile as i128 - 100;
        t.row(&[
            &name,
            &modeled,
            &per_tile,
            &b_class,
            &paper,
            &report.total_invalidations(),
            &report.total_coherence_misses(),
        ]);
        assert_eq!(b_class, paper, "per-tile B-class misses match the paper");
    }

    // The framework's own choice.
    let part = partition_rect(&nest, 100);
    println!(
        "\npartition_rect picks grid {:?} (the paper's partition a); \
         communication-free normals: {:?}",
        part.proc_grid,
        communication_free_normals(&nest)
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
    );

    // Doseq-wrapped variant: partition a stays coherence-free, partition
    // b pays every sweep.
    let seq_src = "doseq (t, 1, 3) { doall (i, 101, 200) { doall (j, 1, 100) {
                     A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
                   } } }";
    let seq = parse(seq_src).unwrap();
    println!("\nwith 3 repetitions (Fig. 9 pattern):");
    let t = Table::new(&[("partition", 18), ("total misses", 12), ("coherence", 9)]);
    for (name, grid) in [
        ("a: strips 1x100", vec![1i128, 100]),
        ("b: blocks 10x10", vec![10, 10]),
    ] {
        let report = run_nest(
            &seq,
            &assign_rect(&seq, &grid),
            MachineConfig::uniform(100),
            &UniformHome,
        );
        t.row(&[
            &name,
            &report.total_misses(),
            &report.total_coherence_misses(),
        ]);
    }
}
