//! E3: Example 3 — parallelogram tiles beat every rectangle for
//! `A[i,j] = B[i,j] + B[i+1,j+3]`.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E3", "Example 3: parallelogram vs all rectangles, P = 16");
    let src = "doall (i, 1, 64) { doall (j, 1, 64) {
                 A[i,j] = B[i,j] + B[i+1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let p = 16i128;
    let model = CostModel::from_nest(&nest);

    // Every rectangular grid.
    let t = Table::new(&[("tile", 24), ("modeled cost", 12), ("sim misses", 10)]);
    let mut best_rect = u64::MAX;
    for grid in [
        vec![1i128, 16],
        vec![2, 8],
        vec![4, 4],
        vec![8, 2],
        vec![16, 1],
    ] {
        let extents: Vec<i128> = grid.iter().map(|&g| 64 / g - 1).collect();
        let cost = model.cost_rect(&extents);
        let report = run_nest(
            &nest,
            &assign_rect(&nest, &grid),
            MachineConfig::uniform(p as usize),
            &UniformHome,
        );
        best_rect = best_rect.min(report.total_cold_misses());
        t.row(&[
            &format!("rect {}x{}", extents[0] + 1, extents[1] + 1),
            &cost,
            &report.total_cold_misses(),
        ]);
    }

    // The parallelepiped search.
    let para = optimize_parallelepiped(
        &nest,
        p,
        &ParaSearchConfig {
            max_entry: 3,
            threads: 4,
        },
    );
    println!(
        "\nparallelepiped search winner: basis rows {:?}, modeled cost {}",
        (0..2)
            .map(|r| para.basis.row(r).0.clone())
            .collect::<Vec<_>>(),
        para.cost
    );

    // Simulate the skewed partition via slabs along the comm-free normal
    // (the same internalization the parallelogram achieves, with exact
    // load balance).
    let normals = communication_free_normals(&nest);
    let slab_report = run_nest(
        &nest,
        &assign_slabs(&nest, &normals[0], p),
        MachineConfig::uniform(p as usize),
        &UniformHome,
    );
    // Boundary misses = misses beyond the compulsory A+B volume
    // (64*64 for A, 64*66... exactly: distinct elements of each array).
    let compulsory = 64 * 64 + 65 * 67; // |A| + |B extent box touched|
    println!(
        "simulated: best rectangle {} vs parallelogram slabs {} (boundary misses {} vs {})",
        best_rect,
        slab_report.total_cold_misses(),
        best_rect as i64 - compulsory,
        slab_report.total_cold_misses() as i64 - compulsory,
    );
    assert!(slab_report.total_cold_misses() < best_rect);
    println!("\npaper: \"parallelogram tiles result in a lower cost of memory access\ncompared to any rectangular partition\" — confirmed.");
}
