//! E16 (extension): limited directories — the design point the Alewife
//! machine's LimitLESS directory addresses.  The paper's framework
//! minimizes the *number* of shared boundary elements; how much each
//! shared element costs depends on the directory.  Here: full-map vs
//! Dir_i-NB (pointer eviction) vs Dir_i-B (broadcast) on a widely-read
//! boundary.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E16", "directory organization under wide read-sharing");
    // A broadcast-heavy kernel: every processor reads row 0 of B (a
    // shared coefficient row) each sweep, then updates its own tile.
    let src = "doseq (t, 1, 4) {
                 doall (i, 0, 31) { doall (j, 0, 31) {
                   A[i,j] = A[i,j] + B[0,j];
                 } }
               }";
    let nest = parse(src).unwrap();
    let p = 16usize;
    // Split i only: all 16 processors share every B[0,j] element.
    let assignment = assign_rect(&nest, &[16, 1]);

    let t = Table::new(&[
        ("directory", 22),
        ("misses", 8),
        ("coherence", 9),
        ("invalidations", 13),
        ("overflows", 9),
    ]);
    let mut results = Vec::new();
    for (name, dir) in [
        ("full-map", DirectoryKind::FullMap),
        (
            "Dir4-NB (evict)",
            DirectoryKind::LimitedNoBroadcast { pointers: 4 },
        ),
        (
            "Dir4-B (broadcast)",
            DirectoryKind::LimitedBroadcast { pointers: 4 },
        ),
        (
            "Dir1-NB (evict)",
            DirectoryKind::LimitedNoBroadcast { pointers: 1 },
        ),
    ] {
        let report = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(p).with_directory(dir),
            &UniformHome,
        );
        assert!(report.check_conservation());
        t.row(&[
            &name,
            &report.total_misses(),
            &report.total_coherence_misses(),
            &report.total_invalidations(),
            &report.total_directory_overflows(),
        ]);
        results.push((name, report));
    }
    let full = &results[0].1;
    let nb4 = &results[1].1;
    let b4 = &results[2].1;
    let nb1 = &results[3].1;
    assert_eq!(full.total_directory_overflows(), 0);
    assert!(nb4.total_directory_overflows() > 0);
    assert!(
        nb1.total_misses() >= nb4.total_misses(),
        "fewer pointers, more thrash"
    );
    assert!(
        nb4.total_misses() > full.total_misses(),
        "pointer eviction must cost misses on 16-way read sharing"
    );
    assert!(
        b4.total_misses() <= nb4.total_misses(),
        "broadcast never evicts readers of a read-only line"
    );
    println!(
        "\n16 readers per line of B[0,*]: with 4 pointers, eviction (NB) thrashes\n\
         ({} misses vs {} full-map); the broadcast variant keeps readers cached\n\
         ({} misses) at the cost of imprecise invalidations — the trade-off\n\
         LimitLESS resolves in software.  The loop partitioner's job is to\n\
         make such widely-shared data rare in the first place.",
        nb4.total_misses(),
        full.total_misses(),
        b4.total_misses()
    );

    // And the partitioner indeed avoids it: splitting j gives each
    // processor a private slice of B[0,*].
    println!("\nwith the optimizer's grid (splits j too):");
    let part = partition_rect(&nest, p as i128);
    let opt_assign = assign_rect(&nest, &part.proc_grid);
    let t = Table::new(&[("directory", 22), ("misses", 8), ("overflows", 9)]);
    for (name, dir) in [
        ("full-map", DirectoryKind::FullMap),
        (
            "Dir4-NB (evict)",
            DirectoryKind::LimitedNoBroadcast { pointers: 4 },
        ),
    ] {
        let report = run_nest(
            &nest,
            &opt_assign,
            MachineConfig::uniform(p).with_directory(dir),
            &UniformHome,
        );
        t.row(&[
            &name,
            &report.total_misses(),
            &report.total_directory_overflows(),
        ]);
    }
    println!(
        "\ngrid {:?}: B[0,*] sharing drops to the j-boundary only.",
        part.proc_grid
    );
}
