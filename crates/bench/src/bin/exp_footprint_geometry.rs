//! E4: Figs. 5 & 6 / Example 6 — the footprint of a skewed tile is the
//! parallelepiped `LG`, with size `|det LG| = L1·L2` plus boundary.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header(
        "E4",
        "Example 6 / Figs. 5-6: footprint geometry of a skewed tile",
    );
    let nest = parse(
        "doall (i, 0, 99) { doall (j, 0, 99) {
           A[i,j] = B[i+j,j] + B[i+j+1,j+2];
         } }",
    )
    .unwrap();
    let classes = classify(&nest);
    let b = classes.iter().find(|c| c.array == "B").unwrap();
    println!("G =\n{}", b.g);

    let t = Table::new(&[
        ("L1", 4),
        ("L2", 4),
        ("|det LG|", 9),
        ("paper L1L2+L1+L2", 16),
        ("exact points", 12),
    ]);
    for (l1, l2) in [(4i128, 3i128), (5, 4), (8, 2), (6, 6), (10, 3)] {
        let tile = Tile::general(IMat::from_rows(&[&[l1, l1], &[l2, 0]]));
        let det = single_footprint_estimate(&tile, &b.g);
        let exact = single_footprint_exact(&tile, &b.g);
        t.row(&[&l1, &l2, &det, &(l1 * l2 + l1 + l2), &exact]);
        assert_eq!(det, l1 * l2);
        // Paper's count drops the closed-corner +1.
        assert_eq!(exact as i128, l1 * l2 + l1 + l2 + 1);
    }
    println!("\nexact = paper's count + 1 (the paper drops the closed corner point);");
    println!("the |det LG| estimate (Eq. 2) is the area term alone.");

    // Theorem 1's caveat: for non-unimodular G not every point of LG is
    // touched.
    println!("\nTheorem 1 caveat (A[2i]): S(LG) overestimates for non-unimodular G:");
    let nest2 = parse("doall (i, 0, 9) { A[2*i] = A[2*i]; }").unwrap();
    let g2 = nest2.body[0].lhs.g_matrix();
    let tile2 = Tile::rect(&[9]);
    println!(
        "  tile 0..=9: |det LG| = {}, touched = {} (density 1/2: Smith index {})",
        single_footprint_estimate(&tile2, &g2),
        single_footprint_exact(&tile2, &g2),
        alp::linalg::smith_normal_form(&g2)
            .invariants
            .iter()
            .product::<i128>()
    );
}
