//! E10: communication-free partitions (Ramanujam & Sadayappan) —
//! whenever their conditions hold, the framework finds a zero-coherence
//! partition; when they don't, it still returns a traffic-minimal one.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E10", "communication-free partitions (R&S [7]) and beyond");
    let cases: Vec<(&str, &str, bool)> = vec![
        (
            "Example 2 (diagonal refs)",
            "doall (i, 101, 200) { doall (j, 1, 100) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]; } }",
            true,
        ),
        (
            "Example 3 (skew translation)",
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i,j] + B[i+1,j+3]; } }",
            true,
        ),
        (
            "1-D wave (t = (1,1))",
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = A[i+1,j+1] + B[i,j] + B[i+2,j+2]; } }",
            true,
        ),
        (
            "full 2-D stencil",
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = A[i+1,j] + A[i,j+1]; } }",
            false,
        ),
        (
            "Example 10",
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                      + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1]; } }",
            false,
        ),
    ];

    let t = Table::new(&[
        ("nest", 28),
        ("comm-free?", 10),
        ("paper/R&S", 9),
        ("normals", 16),
        ("sim coherence", 13),
        ("sim invalid.", 12),
    ]);
    for (name, src, expected) in cases {
        let nest = parse(src).unwrap();
        let normals = communication_free_normals(&nest);
        let found = !normals.is_empty();
        assert_eq!(found, expected, "{name}");

        // Simulate: comm-free cases via slabs along the first normal;
        // others via the optimizer's rectangle.  Wrap in 2 repetitions so
        // coherence traffic (if any) is visible.
        let wrapped = parse(&format!("doseq (t, 1, 2) {{ {src} }}")).unwrap();
        let p = 8i128;
        let assignment = if found {
            assign_slabs(&wrapped, &normals[0], p)
        } else {
            let part = partition_rect(&wrapped, p);
            assign_rect(&wrapped, &part.proc_grid)
        };
        let report = run_nest(
            &wrapped,
            &assignment,
            MachineConfig::uniform(p as usize),
            &UniformHome,
        );
        if found {
            assert_eq!(
                report.total_coherence_misses(),
                0,
                "{name} should be coherence-free"
            );
            assert_eq!(report.total_invalidations(), 0, "{name}");
        }
        t.row(&[
            &name,
            &found,
            &expected,
            &format!(
                "{:?}",
                normals.iter().map(|h| h.to_string()).collect::<Vec<_>>()
            ),
            &report.total_coherence_misses(),
            &report.total_invalidations(),
        ]);
    }
    println!("\ncomm-free cases simulate to exactly zero coherence traffic;\nnon-comm-free cases still get the traffic-minimal rectangle (the case\n[7] does not handle — §5).");
}
