//! E6: Example 8 / Fig. 9 — the 3-D stencil: optimal aspect ratio
//! 2:3:4, agreement with Abraham & Hudak, coherence traffic of the
//! Doseq variant, and the shape sweep showing the model's minimum is the
//! machine's minimum.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E6", "Example 8: 3-D stencil, ratio 2:3:4");
    let src = "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
                 A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
               } } }";
    let nest = parse(src).unwrap();
    let model = CostModel::from_nest(&nest);
    let ratio = optimal_aspect_ratio(&model).unwrap();
    println!(
        "closed-form aspect ratio: {} (paper: 2 : 3 : 4)\n",
        ratio
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(" : ")
    );
    assert_eq!(ratio, vec![Rat::int(2), Rat::int(3), Rat::int(4)]);

    // Shape sweep on 64 processors: model vs simulated misses per tile.
    println!("shape sweep (P = 64, iteration space 64^3):");
    let t = Table::new(&[
        ("grid", 12),
        ("tile", 12),
        ("model/tile", 10),
        ("sim/tile", 10),
        ("traffic/tile", 12),
    ]);
    let mut results: Vec<(Vec<i128>, i128, u64)> = Vec::new();
    for grid in [
        vec![64i128, 1, 1],
        vec![1, 64, 1],
        vec![1, 1, 64],
        vec![4, 4, 4],
        vec![8, 4, 2],
        vec![2, 4, 8],
        vec![16, 2, 2],
    ] {
        let extents: Vec<i128> = grid.iter().map(|&g| 64 / g - 1).collect();
        let cost = model.cost_rect(&extents);
        let traffic = model.traffic_rect(&extents);
        let report = run_nest(
            &nest,
            &assign_rect(&nest, &grid),
            MachineConfig::uniform(64),
            &UniformHome,
        );
        let per_tile = report.total_cold_misses() / 64;
        t.row(&[
            &format!("{:?}", grid),
            &format!("{}x{}x{}", extents[0] + 1, extents[1] + 1, extents[2] + 1),
            &cost,
            &per_tile,
            &traffic,
        ]);
        results.push((grid, cost.floor(), per_tile));
    }
    // Model's best grid is also the machine's best grid.
    let best_model = results.iter().min_by_key(|r| r.1).unwrap().0.clone();
    let best_machine = results.iter().min_by_key(|r| r.2).unwrap().0.clone();
    println!("\nmodel minimum at grid {best_model:?}, machine minimum at grid {best_machine:?}");
    assert_eq!(
        best_model, best_machine,
        "model and machine agree on the winner"
    );

    // Agreement with Abraham & Hudak on their domain.
    let ah_nest = parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = A[i-1,j,k+1] + A[i,j+1,k] + A[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    let ours = partition_rect(&ah_nest, 64);
    let ah = abraham_hudak_rect(&ah_nest, 64).unwrap();
    println!(
        "\nAbraham-Hudak agreement: ours {:?} vs A&H {:?} -> {}",
        ours.proc_grid,
        ah.proc_grid,
        if ours.proc_grid == ah.proc_grid {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(ours.proc_grid, ah.proc_grid);

    // Fig. 9: coherence traffic under repetition, optimal vs slab shape.
    println!("\nFig. 9 (doseq-wrapped, 3 sweeps, P = 8, 16^3 space): coherence traffic");
    let seq = parse(
        "doseq (t, 1, 3) { doall (i, 1, 16) { doall (j, 1, 16) { doall (k, 1, 16) {
           A[i,j,k] = A[i-1,j,k+1] + A[i,j+1,k] + A[i+1,j-2,k-3];
         } } } }",
    )
    .unwrap();
    let t = Table::new(&[("grid", 12), ("coherence", 10), ("invalidations", 13)]);
    for grid in [vec![8i128, 1, 1], vec![2, 2, 2], vec![1, 2, 4]] {
        let report = run_nest(
            &seq,
            &assign_rect(&seq, &grid),
            MachineConfig::uniform(8),
            &UniformHome,
        );
        t.row(&[
            &format!("{:?}", grid),
            &report.total_coherence_misses(),
            &report.total_invalidations(),
        ]);
    }

    // Bonus: the framework finds Example 8's hidden communication-free
    // skewed family (translations span only 2 of 3 dimensions).
    let normals = communication_free_normals(&nest);
    println!(
        "\nbeyond the paper: communication-free normals exist for Example 8: {:?}",
        normals.iter().map(|h| h.to_string()).collect::<Vec<_>>()
    );
}
