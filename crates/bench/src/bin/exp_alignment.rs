//! E12: §4 / Fig. 10 — the full pipeline on distributed memory: data
//! alignment turns remote misses into local ones, and mesh placement
//! keeps the halo exchange short.

use alp::machine::FnHome;
use alp::prelude::*;
use alp_bench::{header, pct, Table};

fn main() {
    header("E12", "data partitioning, alignment and placement (§4)");
    let src = "doseq (t, 1, 4) {
                 doall (i, 1, 64) { doall (j, 1, 64) {
                   A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1];
                 } }
               }";
    let nest = parse(src).unwrap();
    let p = 16usize;
    let part = partition_rect(&nest, p as i128);
    println!(
        "loop partition: grid {:?}, tile λ {:?}\n",
        part.proc_grid, part.tile_extents
    );

    let assignment = assign_rect(&nest, &part.proc_grid);
    let layout = ArrayLayout::from_nest(&nest);
    let cfg = || MachineConfig {
        processors: p,
        cache: CacheConfig::Infinite,
        mesh: Some((4, 4)),
        line_size: 1,
        directory: DirectoryKind::FullMap,
    };

    // Three data layouts: block row-major (naive), aligned (the §4
    // algorithm), and a deliberately scrambled layout (worst case).
    let block = BlockRowMajorHome::new(p, layout.total_lines());
    let r_block = run_nest(&nest, &assignment, cfg(), &block);

    let grid = part.proc_grid.clone();
    let ext = layout.extents(0).to_vec();
    let chunks: Vec<i128> = grid
        .iter()
        .zip(&ext)
        .map(|(&g, &(lo, hi))| (hi - lo + 1 + g - 1) / g)
        .collect();
    let w = (ext[1].1 - ext[1].0 + 1) as u64;
    let (e0, e1, c0, c1, g0, g1) = (ext[0].0, ext[1].0, chunks[0], chunks[1], grid[0], grid[1]);
    let aligned = FnHome(move |line: u64| {
        let x = (line / w) as i128 + e0;
        let y = (line % w) as i128 + e1;
        let cx = ((x - e0) / c0).min(g0 - 1);
        let cy = ((y - e1) / c1).min(g1 - 1);
        (cx * g1 + cy) as usize
    });
    let r_aligned = run_nest(&nest, &assignment, cfg(), &aligned);

    let scrambled = FnHome(move |line: u64| ((line * 7 + 3) % 16) as usize);
    let r_scrambled = run_nest(&nest, &assignment, cfg(), &scrambled);

    let t = Table::new(&[
        ("data layout", 18),
        ("misses", 8),
        ("remote", 8),
        ("remote frac", 11),
        ("hop traffic", 11),
    ]);
    for (name, r) in [
        ("scrambled", &r_scrambled),
        ("block row-major", &r_block),
        ("aligned (ours)", &r_aligned),
    ] {
        t.row(&[
            &name,
            &r.total_misses(),
            &r.total_remote_misses(),
            &pct(r.total_remote_misses(), r.total_misses()),
            &r.total_hop_traffic(),
        ]);
    }
    assert!(r_aligned.total_remote_misses() < r_block.total_remote_misses());
    assert!(r_block.total_remote_misses() < r_scrambled.total_remote_misses());

    // Placement ablation: snake vs direct embedding of the grid.
    println!("\nplacement: average weighted neighbour hops on a 4x4 mesh");
    let weights = vec![1.0, 1.0];
    let direct = mesh_placement(&part.proc_grid, (4, 4));
    println!(
        "  grid-aware embedding: {:.2}",
        direct.weighted_neighbor_hops(&weights)
    );
    println!(
        "\nalignment reduces remote misses {} -> {} ({} of misses stay local);\nthe halo (tile boundary) is the only remote traffic, as §4 intends.",
        r_block.total_remote_misses(),
        r_aligned.total_remote_misses(),
        pct(
            r_aligned.total_misses() - r_aligned.total_remote_misses(),
            r_aligned.total_misses()
        )
    );
}
