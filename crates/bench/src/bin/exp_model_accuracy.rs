//! E13: model validation — Eq. 2 / Theorem 2 / Theorem 4 estimates vs
//! exactly enumerated footprints over randomly generated loop nests, and
//! the lattice-corrected ablation.

use alp::footprint::size::single_footprint_lattice_corrected;
use alp::prelude::*;
use alp_bench::{header, rel_err, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header("E13", "estimate accuracy over random references and tiles");
    let mut rng = StdRng::seed_from_u64(0xF00D);

    // --- Single-reference footprints (Eq. 2 vs exact). -----------------
    let mut det_errs: Vec<f64> = Vec::new();
    let mut corrected_errs: Vec<f64> = Vec::new();
    let trials = 300;
    for _ in 0..trials {
        // Random nonsingular 2x2 G with small entries.
        let g = loop {
            let m = IMat::from_rows(&[
                &[rng.gen_range(-2i128..=2), rng.gen_range(-2i128..=2)],
                &[rng.gen_range(-2i128..=2), rng.gen_range(-2i128..=2)],
            ]);
            if m.is_nonsingular() {
                break m;
            }
        };
        let tile = Tile::rect(&[rng.gen_range(4i128..=16), rng.gen_range(4i128..=16)]);
        let exact = single_footprint_exact(&tile, &g) as f64;
        det_errs.push(rel_err(single_footprint_estimate(&tile, &g) as f64, exact));
        corrected_errs.push(rel_err(
            single_footprint_lattice_corrected(&tile, &g) as f64,
            exact,
        ));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b));
    println!("single-reference footprint, {trials} random (G, L):");
    let t = Table::new(&[("estimator", 26), ("mean err", 9), ("max err", 9)]);
    t.row(&[
        &"|det LG| (Eq. 2)",
        &format!("{:.1}%", 100.0 * mean(&det_errs)),
        &format!("{:.1}%", 100.0 * max(&det_errs)),
    ]);
    t.row(&[
        &"lattice-corrected (ours)",
        &format!("{:.1}%", 100.0 * mean(&corrected_errs)),
        &format!("{:.1}%", 100.0 * max(&corrected_errs)),
    ]);
    assert!(
        mean(&corrected_errs) < mean(&det_errs),
        "the Smith-index correction must help on non-unimodular G"
    );

    // --- Cumulative footprints (Theorem 4 vs exact). --------------------
    println!("\ncumulative footprint (Theorem 4), random stencil pairs:");
    let mut thm4_errs: Vec<f64> = Vec::new();
    for _ in 0..200 {
        let (o1, o2) = (rng.gen_range(-3i128..=3), rng.gen_range(-3i128..=3));
        let src = format!(
            "doall (i, 0, 40) {{ doall (j, 0, 40) {{
               A[i,j] = A[i{}{o1}, j{}{o2}];
             }} }}",
            if o1 >= 0 { "+" } else { "" },
            if o2 >= 0 { "+" } else { "" },
        );
        let nest = parse(&src).unwrap();
        let class = &classify(&nest)[0];
        let lam = [rng.gen_range(4i128..=12), rng.gen_range(4i128..=12)];
        let est = cumulative_footprint_rect(&lam, class).to_f64();
        let exact = cumulative_footprint_exact(&Tile::rect(&lam), class) as f64;
        thm4_errs.push(rel_err(est, exact));
    }
    println!(
        "  mean err {:.2}%, max err {:.2}% over 200 instances",
        100.0 * mean(&thm4_errs),
        100.0 * max(&thm4_errs)
    );
    assert!(
        max(&thm4_errs) < 0.12,
        "Theorem 4 should be within the corner term"
    );

    // --- Does the model rank partitions like the exact count? ----------
    println!("\nranking fidelity: model argmin == exact argmin over random 2-ref nests");
    let mut agree = 0;
    let nests = 60;
    for _ in 0..nests {
        let (o1, o2) = (rng.gen_range(0i128..=4), rng.gen_range(0i128..=4));
        let src = format!(
            "doall (i, 0, 35) {{ doall (j, 0, 35) {{
               A[i,j] = B[i,j] + B[i+{o1}, j+{o2}];
             }} }}"
        );
        let nest = parse(&src).unwrap();
        let model = CostModel::from_nest(&nest);
        let classes = classify(&nest);
        let shapes: Vec<Vec<i128>> = vec![
            vec![35, 3],
            vec![17, 7],
            vec![11, 11],
            vec![7, 17],
            vec![3, 35],
        ];
        let model_best = shapes
            .iter()
            .min_by_key(|lam| model.cost_rect(lam))
            .expect("nonempty");
        let exact_best = shapes
            .iter()
            .min_by_key(|lam| {
                let tile = Tile::rect(lam);
                classes
                    .iter()
                    .map(|c| cumulative_footprint_exact(&tile, c))
                    .sum::<usize>()
            })
            .expect("nonempty");
        if model_best == exact_best {
            agree += 1;
        }
    }
    println!("  model agrees with exact on {agree}/{nests} random nests");
    assert!(agree * 10 >= nests * 9, "at least 90% ranking agreement");
}
