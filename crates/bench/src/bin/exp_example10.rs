//! E8: Example 10 — nonsingular-but-not-unimodular G, singular G with
//! column selection, a reference that is uniformly generated but not
//! intersecting, and an optimum beyond communication-free methods.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E8", "Example 10: the general case");
    let src = "doall (i, 1, 60) { doall (j, 1, 60) {
                 A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                        + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
               } }";
    let nest = parse(src).unwrap();
    let classes = classify(&nest);
    println!(
        "classes found: {} (paper: B pair, C pair, C singleton, A singleton)",
        classes.len()
    );
    for c in &classes {
        println!(
            "  {} ({} refs): rank {} / {} rows, â = {}",
            c.array,
            c.len(),
            c.g.rank(),
            c.g.rows(),
            c.spread()
        );
    }
    assert_eq!(classes.len(), 4);

    // Paper's closed forms for the two active classes.
    let b = classes.iter().find(|c| c.array == "B").unwrap();
    let c_pair = classes
        .iter()
        .find(|c| c.array == "C" && c.len() == 2)
        .unwrap();
    println!("\nclosed forms at tile (L_i, L_j) = (9, 5):");
    let (li, lj) = (9i128, 5i128);
    let b_model = cumulative_footprint_rect(&[li, lj], b);
    let c_model = cumulative_footprint_rect(&[li, lj], c_pair);
    println!(
        "  B: model {} vs paper (Li+1)(Lj+1)+3(Lj+1)+(Li+1) = {}",
        b_model,
        (li + 1) * (lj + 1) + 3 * (lj + 1) + (li + 1)
    );
    println!(
        "  C: model {} vs paper (Li+1)(Lj+1)+(Li+1) = {}",
        c_model,
        (li + 1) * (lj + 1) + (li + 1)
    );
    assert_eq!(
        b_model,
        Rat::int((li + 1) * (lj + 1) + 3 * (lj + 1) + (li + 1))
    );
    assert_eq!(c_model, Rat::int((li + 1) * (lj + 1) + (li + 1)));

    // Exact enumeration cross-check for B (non-unimodular G!).
    println!("\nexact vs Theorem 4 for the B class (G nonsingular, det ±2):");
    let t = Table::new(&[("tile", 8), ("thm4", 7), ("exact", 7)]);
    for (l1, l2) in [(9i128, 5i128), (5, 9), (12, 12), (20, 6)] {
        let thm4 = cumulative_footprint_rect(&[l1, l2], b);
        let tile = Tile::rect(&[l1, l2]);
        let exact = cumulative_footprint_exact(&tile, b);
        t.row(&[&format!("{}x{}", l1 + 1, l2 + 1), &thm4, &exact]);
        // Theorem 4 uses the bounded-lattice count (Lemma 3 approx):
        // it matches the exact union up to the dropped corner term.
        let diff = thm4 - Rat::int(exact as i128);
        assert!(diff.abs() <= Rat::int(3), "thm4 {thm4} exact {exact}");
    }

    // The optimization: minimize 2(L_i+1) + 3(L_j+1) (after dropping
    // constants) subject to fixed area.
    let model = CostModel::from_nest(&nest);
    let ratio = optimal_aspect_ratio(&model).unwrap();
    println!(
        "\naspect ratio λ_i : λ_j = {} : {} (paper's optimality condition 2L_i = 3L_j + 1)",
        ratio[0], ratio[1]
    );
    assert_eq!(ratio, vec![Rat::int(3), Rat::int(2)]);

    // No communication-free partition exists — the case [7] cannot
    // handle — yet the optimizer still returns the traffic-minimal
    // rectangle, validated on the machine.
    println!("\ncommunication-free? {}", is_communication_free(&nest));
    assert!(!is_communication_free(&nest));

    println!("\nshape sweep on the machine (P = 36, 60x60 space):");
    let t = Table::new(&[("grid", 10), ("tile", 8), ("sim misses/tile", 15)]);
    let mut best: Option<(Vec<i128>, u64)> = None;
    for grid in [
        vec![36i128, 1],
        vec![12, 3],
        vec![6, 6],
        vec![4, 9],
        vec![3, 12],
        vec![1, 36],
    ] {
        let extents: Vec<i128> = grid.iter().map(|&g| 60 / g - 1).collect();
        let report = run_nest(
            &nest,
            &assign_rect(&nest, &grid),
            MachineConfig::uniform(36),
            &UniformHome,
        );
        let per_tile = report.total_cold_misses() / 36;
        t.row(&[
            &format!("{:?}", grid),
            &format!("{}x{}", extents[0] + 1, extents[1] + 1),
            &per_tile,
        ]);
        match &best {
            Some((_, m)) if *m <= per_tile => {}
            _ => best = Some((grid.clone(), per_tile)),
        }
    }
    let (best_grid, _) = best.unwrap();
    let ours = partition_rect(&nest, 36);
    println!(
        "\nmachine minimum at {best_grid:?}; partition_rect picks {:?}",
        ours.proc_grid
    );
    assert_eq!(
        best_grid, ours.proc_grid,
        "the optimizer's grid is the machine's best"
    );
}
