//! E15 (extension): the effect of larger cache lines, which §2.2 says
//! "can be included as suggested in \[6\]" — spatial locality rewards
//! tiles contiguous in the fastest-varying dimension, and false sharing
//! punishes tiles that cut across lines.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E15", "cache-line size: spatial locality vs false sharing");
    // Row-major arrays: the j dimension is contiguous.
    let src = "doseq (t, 1, 2) {
                 doall (i, 0, 63) { doall (j, 0, 63) {
                   A[i,j] = A[i,j] + B[i,j];
                 } }
               }";
    let nest = parse(src).unwrap();
    let p = 16usize;

    println!("per-partition misses as the line grows (64x64, P = 16, 2 sweeps):\n");
    let t = Table::new(&[
        ("grid", 10),
        ("line", 5),
        ("cold", 7),
        ("coherence", 9),
        ("invalidations", 13),
        ("total", 7),
    ]);
    let mut summary: Vec<(String, u64, u64)> = Vec::new();
    for grid in [vec![16i128, 1], vec![4, 4], vec![1, 16]] {
        let assignment = assign_rect(&nest, &grid);
        for line in [1u64, 4, 16] {
            let report = run_nest(
                &nest,
                &assignment,
                MachineConfig::uniform(p).with_line_size(line),
                &UniformHome,
            );
            assert!(report.check_conservation());
            t.row(&[
                &format!("{:?}", grid),
                &line,
                &report.total_cold_misses(),
                &report.total_coherence_misses(),
                &report.total_invalidations(),
                &report.total_misses(),
            ]);
            if line == 16 {
                summary.push((
                    format!("{grid:?}"),
                    report.total_misses(),
                    report.total_invalidations(),
                ));
            }
        }
    }

    // With 16-element lines, strips of full rows ([16,1]: tiles span
    // whole i-rows... wait: grid [16,1] splits i, keeping j (the
    // contiguous dim) whole — each tile owns complete lines: maximal
    // spatial locality, zero false sharing.  Grid [1,16] splits j and
    // cuts every line across 4 processors: false sharing.
    let rows = summary.iter().find(|s| s.0 == "[16, 1]").expect("present");
    let cols = summary.iter().find(|s| s.0 == "[1, 16]").expect("present");
    println!(
        "\nat line size 16: splitting i (lines intact) -> {} misses, {} invalidations;\n\
         splitting j (lines cut) -> {} misses, {} invalidations.",
        rows.1, rows.2, cols.1, cols.2
    );
    assert!(
        rows.1 < cols.1,
        "line-preserving tiles must win at large line size"
    );
    assert!(rows.2 <= cols.2);
    println!(
        "\nwith multi-element lines the effective footprint is counted in lines:\n\
         tiles whose boundaries respect line boundaries (split only slow\n\
         dimensions) keep both the spatial-locality gain and coherence-free\n\
         boundaries — [6]'s adjustment, reproduced on the simulator."
    );
}
