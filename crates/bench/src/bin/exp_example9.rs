//! E7: Example 9 — two active classes (B and C); the rectangular
//! optimum, with exact enumeration adjudicating the memo's printed
//! objective (see EXPERIMENTS.md).

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E7", "Example 9: multiple uniformly intersecting sets");
    let src = "doall (i, 1, 100) { doall (j, 1, 100) {
                 A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let classes = classify(&nest);
    println!("classes:");
    for c in &classes {
        println!("  {} ({} refs), â = {}", c.array, c.len(), c.spread());
    }

    // Our derivation: B contributes |u| = (2,1); C contributes |u| = (2,3)
    // => traffic ≈ 4·(λ_i+1)·0 + ... => coefficients (4, 4): square tiles.
    let model = CostModel::from_nest(&nest);
    let ratio = optimal_aspect_ratio(&model).unwrap();
    println!(
        "\nLagrange coefficients (λ_i : λ_j) = {} : {}",
        ratio[0], ratio[1]
    );
    println!("memo prints \"2L11L22 + 4L11 + 6L22\" (optimum 4L11 = 6L22);");
    println!("our Theorem-2 evaluation gives 2L11L22 + 4L11 + 4L22 (optimum square).");
    println!("exact enumeration decides:\n");

    // Exact adjudication: fix the tile area at exactly 240 and sweep the
    // aspect ratio through the divisor pairs.
    let t = Table::new(&[
        ("tile", 10),
        ("exact footprint", 15),
        ("model", 8),
        ("memo formula", 12),
    ]);
    let mut best: Option<(i128, i128, usize)> = None;
    for (l11, l22) in [
        (40i128, 6i128),
        (30, 8),
        (24, 10),
        (20, 12),
        (16, 15),
        (15, 16),
        (12, 20),
        (10, 24),
        (8, 30),
        (6, 40),
    ] {
        let tile = Tile::rect(&[l11 - 1, l22 - 1]);
        let exact: usize = classes
            .iter()
            .map(|c| cumulative_footprint_exact(&tile, c))
            .sum();
        let model_cost = model.cost_rect(&[l11 - 1, l22 - 1]);
        let memo = 2 * l11 * l22 + 4 * l11 + 6 * l22;
        t.row(&[&format!("{l11}x{l22}"), &exact, &model_cost, &memo]);
        match best {
            Some((_, _, e)) if e <= exact => {}
            _ => best = Some((l11, l22, exact)),
        }
    }
    let (best_l11, best_l22, _) = best.unwrap();
    println!(
        "\nexact minimum at {best_l11}x{best_l22} (the most square divisor pair):\n\
         matches our symmetric 4L11 + 4L22 objective, not the memo's\n\
         4L11 = 6L22 (which would favor 20x12).  We conclude the memo's\n\
         \"6L22\" is a typo for \"4L22\"."
    );
    assert!(
        (best_l11, best_l22) == (16, 15) || (best_l11, best_l22) == (15, 16),
        "most-square pair wins, got {best_l11}x{best_l22}"
    );
}
