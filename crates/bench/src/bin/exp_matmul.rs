//! E11: Fig. 11 / Appendix A — matrix multiply with fine-grain
//! synchronized accumulates: blocks beat rows/columns; accumulate
//! references behave as writes in the protocol.

use alp::prelude::*;
use alp_bench::{header, Table};

fn main() {
    header("E11", "Fig. 11: matmul with l$ accumulates");
    let src = "doall (i, 1, 32) { doall (j, 1, 32) { doall (k, 1, 32) {
                 l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
               } } }";
    let nest = parse(src).unwrap();
    let p = 16usize;

    let t = Table::new(&[
        ("partition", 20),
        ("cold", 8),
        ("coherence", 9),
        ("invalidations", 13),
        ("total", 8),
    ]);
    let mut block_total = 0u64;
    let mut rows_total = 0u64;
    for (name, grid) in [
        ("rows 16x1x1", vec![16i128, 1, 1]),
        ("cols 1x16x1", vec![1, 16, 1]),
        ("blocks 4x4x1", vec![4, 4, 1]),
        ("k-split 1x1x16", vec![1, 1, 16]),
    ] {
        let report = run_nest(
            &nest,
            &assign_rect(&nest, &grid),
            MachineConfig::uniform(p),
            &UniformHome,
        );
        assert!(report.check_conservation());
        t.row(&[
            &name,
            &report.total_cold_misses(),
            &report.total_coherence_misses(),
            &report.total_invalidations(),
            &report.total_misses(),
        ]);
        if name.starts_with("blocks") {
            block_total = report.total_misses();
        }
        if name.starts_with("rows") {
            rows_total = report.total_misses();
        }
    }
    assert!(
        block_total < rows_total,
        "blocks must beat rows (the §1 motivation)"
    );
    println!(
        "\nblocks beat rows by {:.2}x (paper §1: \"matrix multiply distributed by\nsquare blocks has a much higher degree of reuse\")",
        rows_total as f64 / block_total as f64
    );

    // Accumulate semantics: k-split shares C lines and must invalidate.
    let ksplit = run_nest(
        &nest,
        &assign_rect(&nest, &[1, 1, 16]),
        MachineConfig::uniform(p),
        &UniformHome,
    );
    assert!(
        ksplit.total_invalidations() > 0,
        "accumulates are writes to the protocol"
    );
    let blocks = run_nest(
        &nest,
        &assign_rect(&nest, &[4, 4, 1]),
        MachineConfig::uniform(p),
        &UniformHome,
    );
    assert_eq!(
        blocks.total_invalidations(),
        0,
        "private C tiles never invalidate"
    );
    println!(
        "k-split invalidations: {} (Appendix A: synchronizing accesses are\ntreated as writes by the coherence system) vs blocks: 0",
        ksplit.total_invalidations()
    );

    // The footprint model's block-size prediction for C/A/B classes.
    let model = CostModel::from_nest(&nest);
    println!("\nmodel cost by shape (per tile):");
    let t = Table::new(&[("tile", 12), ("model", 10)]);
    for extents in [vec![31i128, 1, 31], vec![7, 7, 31], vec![1, 31, 31]] {
        t.row(&[
            &format!("{}x{}x{}", extents[0] + 1, extents[1] + 1, extents[2] + 1),
            &model.cost_rect(&extents),
        ]);
    }
}
