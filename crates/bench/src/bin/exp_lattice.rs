//! E9: Theorem 3 and Lemma 3 — bounded-lattice intersection and union
//! size against brute force, over random bases.

use alp::prelude::*;
use alp_bench::{header, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header("E9", "Theorem 3 / Lemma 3: bounded lattices vs brute force");
    let mut rng = StdRng::seed_from_u64(0xA1E31FE);

    let trials = 500;
    let mut thm3_checked = 0u32;
    let mut lemma3_checked = 0u32;
    for _ in 0..trials {
        // Random independent 2x2 basis with small entries.
        let basis = loop {
            let m = IMat::from_rows(&[
                &[rng.gen_range(-3i128..=3), rng.gen_range(-3i128..=3)],
                &[rng.gen_range(-3i128..=3), rng.gen_range(-3i128..=3)],
            ]);
            if m.rank() == 2 {
                break m;
            }
        };
        let bounds = vec![rng.gen_range(0i128..=4), rng.gen_range(0i128..=4)];
        let bl = BoundedLattice::new(basis.clone(), bounds).unwrap();
        let t = IVec::new(&[rng.gen_range(-8i128..=8), rng.gen_range(-8i128..=8)]);

        // Theorem 3: intersection of L and L + t.
        let fast = bl.intersects_translate(&t);
        let brute = bl.points().iter().any(|p| bl.contains(&p.sub(&t).unwrap()));
        assert_eq!(fast, brute, "Theorem 3 mismatch: basis {basis} t {t}");
        thm3_checked += 1;

        // Lemma 3: union size for lattice translations.
        let coeff = IVec::new(&[rng.gen_range(-5i128..=5), rng.gen_range(-5i128..=5)]);
        let tt = basis.apply_row(&coeff).unwrap();
        let exact = bl.union_size_translate_exact(&tt);
        let brute_union = bl.union_size_translate_brute(&tt) as i128;
        assert_eq!(exact, brute_union, "Lemma 3 mismatch: basis {basis} t {tt}");
        lemma3_checked += 1;
    }
    println!("Theorem 3 verified on {thm3_checked} random instances");
    println!("Lemma 3 (exact form) verified on {lemma3_checked} random instances");

    // Lemma 3's approximation quality.
    println!("\nLemma 3 approximation vs exact (unit basis, growing bounds):");
    let t = Table::new(&[("λ", 6), ("u", 10), ("exact", 7), ("approx", 7)]);
    for lam in [3i128, 7, 15, 31] {
        let bl = BoundedLattice::new(IMat::identity(2), vec![lam, lam]).unwrap();
        let u = IVec::new(&[2, 3]);
        let exact = bl.union_size_translate_exact(&u);
        let approx = bl.union_size_translate_approx(&u).unwrap();
        t.row(&[&lam, &format!("{u}"), &exact, &approx]);
        assert!((approx - exact).abs() <= 6, "corner term only");
    }

    // Example 10's class-2 membership decisions via Theorem 3.
    println!("\nExample 10, array C: Theorem 3 decides which references intersect:");
    let g = IMat::from_rows(&[&[1, 2, 1], &[0, 0, 2]]);
    let bl = BoundedLattice::new(g, vec![20, 20]).unwrap();
    for (t, expect) in [
        (IVec::new(&[0, 0, 2]), true),
        (IVec::new(&[1, 2, 2]), false),
    ] {
        let got = bl.intersects_translate(&t);
        println!("  offset diff {t}: intersecting = {got} (paper: {expect})");
        assert_eq!(got, expect);
    }
}
