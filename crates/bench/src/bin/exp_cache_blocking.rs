//! E19 (extension): §2.2's small-cache adjustment — "the optimal loop
//! partition aspect ratios do not change, rather, the size of each loop
//! tile executed at any given time on the processor must be adjusted so
//! that the data fits in the cache."  Measured with the finite-cache
//! simulator.

use alp::prelude::*;
use alp_bench::{header, Table};
use alp_codegen::block_assignment;
use alp_partition::cache_blocked_extents;

fn main() {
    header("E19", "cache-capacity tile blocking (§2.2)");
    // A kernel with genuine 2-D reuse: B is reused along j, C along i.
    let src = "doall (i, 0, 63) { doall (j, 0, 63) {
                 A[i,j] = B[i] + C[j];
               } }";
    let nest = parse(src).unwrap();
    let p = 4usize;
    // Strip tiles (16 x 64): each processor's row of C is wider than the
    // cache, so the lexicographic order re-misses C on every i — the
    // situation §2.2's adjustment exists for.
    let grid = vec![4i128, 1];
    let tile_extents = vec![15i128, 63];
    let assignment = assign_rect(&nest, &grid);
    println!(
        "partition: grid {:?}, per-processor tile {:?} iterations\n",
        grid,
        tile_extents.iter().map(|&x| x + 1).collect::<Vec<_>>()
    );

    // A small 64-line cache per processor.
    let cache = CacheConfig::Finite { sets: 16, ways: 4 };
    let cfg = || MachineConfig {
        processors: p,
        cache,
        mesh: None,
        line_size: 1,
        directory: DirectoryKind::FullMap,
    };

    let t = Table::new(&[
        ("execution order", 24),
        ("capacity misses", 15),
        ("total misses", 12),
        ("miss rate", 9),
    ]);
    // Unblocked lexicographic order.
    let base = run_nest(&nest, &assignment, cfg(), &UniformHome);
    t.row(&[
        &"lexicographic",
        &base.total_capacity_misses(),
        &base.total_misses(),
        &format!("{:.3}", base.miss_rate()),
    ]);

    // Cache-blocked order, sized by the model.
    let model = CostModel::from_nest(&nest);
    let ratio = vec![Rat::ONE, Rat::ONE];
    let sub =
        cache_blocked_extents(&model, &ratio, 48, &tile_extents).expect("a feasible block exists");
    let sub_sizes: Vec<i128> = sub.iter().map(|&x| x + 1).collect();
    let blocked = block_assignment(&assignment, &sub_sizes);
    let br = run_nest(&nest, &blocked, cfg(), &UniformHome);
    t.row(&[
        &format!("blocked {sub_sizes:?}"),
        &br.total_capacity_misses(),
        &br.total_misses(),
        &format!("{:.3}", br.miss_rate()),
    ]);

    // A coarser blocking for contrast (clipped to the 16-row tile).
    let too_big = block_assignment(&assignment, &[32, 32]);
    let tr = run_nest(&nest, &too_big, cfg(), &UniformHome);
    t.row(&[
        &"blocked [32, 32]",
        &tr.total_capacity_misses(),
        &tr.total_misses(),
        &format!("{:.3}", tr.miss_rate()),
    ]);

    assert!(
        br.total_capacity_misses() < base.total_capacity_misses(),
        "model-sized blocks must cut capacity misses: {} vs {}",
        br.total_capacity_misses(),
        base.total_capacity_misses()
    );
    println!(
        "\nmodel-sized blocks (footprint ≤ cache) cut capacity misses {:.1}x;\n\
         the partition itself (who owns what) never changed — §2.2's claim\n\
         that small caches rescale the tile, not reshape the partition.",
        base.total_capacity_misses() as f64 / br.total_capacity_misses().max(1) as f64
    );
}
