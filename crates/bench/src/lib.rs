//! Shared harness utilities for the `exp_*` experiment binaries.
//!
//! Each binary regenerates one figure or worked example of the paper
//! (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record).  The utilities here keep the output format
//! uniform: fixed-width tables with a title line, so EXPERIMENTS.md can
//! quote them directly.

use std::fmt::Display;
use std::time::Duration;

/// Print an experiment header.
pub fn header(id: &str, title: &str) {
    println!("=== {id}: {title} ===");
}

/// A fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table; prints the column headers.
    pub fn new(cols: &[(&str, usize)]) -> Self {
        let mut line = String::new();
        for (name, w) in cols {
            line.push_str(&format!("{:>width$}  ", name, width = w));
        }
        println!("{}", line.trim_end());
        println!("{}", "-".repeat(line.trim_end().len()));
        Table {
            widths: cols.iter().map(|&(_, w)| w).collect(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.widths.len(), "cell count mismatch");
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{:>width$}  ", cell.to_string(), width = w));
        }
        println!("{}", line.trim_end());
    }
}

/// Detected hardware parallelism (1 when detection fails).  Experiment
/// binaries record this next to their thread count so a reader can tell
/// real parallel speedup from interleaved execution on an oversubscribed
/// box.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum and median of a set of wall-clock samples.  The minimum is
/// the noise floor (the run least disturbed by the OS); the median shows
/// how far typical runs sit above it.  Panics on an empty slice.
pub fn min_median(walls: &[Duration]) -> (Duration, Duration) {
    assert!(!walls.is_empty(), "min_median needs at least one sample");
    let mut sorted = walls.to_vec();
    sorted.sort();
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    };
    (sorted[0], median)
}

/// Format a ratio as a percentage string.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Relative error of an estimate vs an exact value.
pub fn rel_err(estimate: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        0.0
    } else {
        (estimate - exact).abs() / exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(1, 0), "n/a");
    }

    #[test]
    fn min_median_odd_and_even() {
        let ms = |n| Duration::from_millis(n);
        let (min, med) = min_median(&[ms(5), ms(1), ms(3)]);
        assert_eq!((min, med), (ms(1), ms(3)));
        let (min, med) = min_median(&[ms(8), ms(2), ms(4), ms(6)]);
        assert_eq!((min, med), (ms(2), ms(5)));
        let (min, med) = min_median(&[ms(7)]);
        assert_eq!((min, med), (ms(7), ms(7)));
    }

    #[test]
    fn detected_cores_is_positive() {
        assert!(detected_cores() >= 1);
    }

    #[test]
    fn rel_err_basics() {
        assert!((rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(5.0, 0.0), 0.0);
    }
}
