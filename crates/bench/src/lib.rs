//! Shared harness utilities for the `exp_*` experiment binaries.
//!
//! Each binary regenerates one figure or worked example of the paper
//! (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record).  The utilities here keep the output format
//! uniform: fixed-width tables with a title line, so EXPERIMENTS.md can
//! quote them directly.

use std::fmt::Display;

/// Print an experiment header.
pub fn header(id: &str, title: &str) {
    println!("=== {id}: {title} ===");
}

/// A fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table; prints the column headers.
    pub fn new(cols: &[(&str, usize)]) -> Self {
        let mut line = String::new();
        for (name, w) in cols {
            line.push_str(&format!("{:>width$}  ", name, width = w));
        }
        println!("{}", line.trim_end());
        println!("{}", "-".repeat(line.trim_end().len()));
        Table {
            widths: cols.iter().map(|&(_, w)| w).collect(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.widths.len(), "cell count mismatch");
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{:>width$}  ", cell.to_string(), width = w));
        }
        println!("{}", line.trim_end());
    }
}

/// Format a ratio as a percentage string.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Relative error of an estimate vs an exact value.
pub fn rel_err(estimate: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        0.0
    } else {
        (estimate - exact).abs() / exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(1, 0), "n/a");
    }

    #[test]
    fn rel_err_basics() {
        assert!((rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(5.0, 0.0), 0.0);
    }
}
