//! Criterion benchmark: the design-choice ablations listed in DESIGN.md
//! §7 — exact lattice counting vs determinant estimates, spread vs
//! cumulative spread, and parallelepiped search breadth.

use alp::footprint::size::single_footprint_lattice_corrected;
use alp::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_counting_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("footprint_counting");
    let g = IMat::from_rows(&[&[1, 1], &[1, -1]]);
    for side in [8i128, 16, 32] {
        let tile = Tile::rect(&[side, side]);
        group.bench_with_input(BenchmarkId::new("det_estimate", side), &tile, |b, t| {
            b.iter(|| single_footprint_estimate(black_box(t), black_box(&g)))
        });
        group.bench_with_input(
            BenchmarkId::new("lattice_corrected", side),
            &tile,
            |b, t| b.iter(|| single_footprint_lattice_corrected(black_box(t), black_box(&g))),
        );
        group.bench_with_input(
            BenchmarkId::new("exact_enumeration", side),
            &tile,
            |b, t| b.iter(|| single_footprint_exact(black_box(t), black_box(&g))),
        );
    }
    group.finish();
}

fn bench_cumulative_methods(c: &mut Criterion) {
    // Three ways to size a class's cumulative footprint: Theorem 4
    // (closed form), the coefficient-lattice inclusion-exclusion (exact,
    // analysis-speed), and data-point enumeration (exact, slow).
    let mut group = c.benchmark_group("cumulative_counting");
    let nest = parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    let class = classify(&nest)
        .into_iter()
        .find(|cl| cl.array == "B")
        .unwrap();
    for side in [7i128, 15] {
        let lam = [side, side, side];
        group.bench_with_input(BenchmarkId::new("theorem4", side), &lam, |b, lam| {
            b.iter(|| cumulative_footprint_rect(black_box(lam), black_box(&class)))
        });
        group.bench_with_input(
            BenchmarkId::new("exact_lattice_inclusion_exclusion", side),
            &lam,
            |b, lam| {
                b.iter(|| {
                    alp::footprint::cumulative_footprint_rect_exact_lattice(
                        black_box(lam),
                        black_box(&class),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_enumeration", side),
            &lam,
            |b, lam| {
                b.iter(|| {
                    cumulative_footprint_exact(&Tile::rect(black_box(lam)), black_box(&class))
                })
            },
        );
    }
    group.finish();
}

fn bench_spread_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("spread");
    let offsets: Vec<IVec> = (0..16)
        .map(|k| IVec::new(&[k % 5 - 2, (k * 3) % 7 - 3, k % 2]))
        .collect();
    group.bench_function("max_min_spread", |b| {
        b.iter(|| alp::footprint::spread(black_box(&offsets)))
    });
    group.bench_function("cumulative_spread", |b| {
        b.iter(|| alp::footprint::cumulative_spread(black_box(&offsets)))
    });
    group.finish();
}

fn bench_para_search_breadth(c: &mut Criterion) {
    let mut group = c.benchmark_group("para_search_breadth");
    group.sample_size(10);
    let nest =
        parse("doall (i, 1, 128) { doall (j, 1, 128) { A[i,j] = B[i,j] + B[i+1,j+3]; } }").unwrap();
    for max_entry in [1i128, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_entry),
            &max_entry,
            |b, &me| {
                b.iter(|| {
                    optimize_parallelepiped(
                        black_box(&nest),
                        16,
                        &ParaSearchConfig {
                            max_entry: me,
                            threads: 1,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets = bench_counting_methods,
    bench_cumulative_methods,
    bench_spread_variants,
    bench_para_search_breadth
}

criterion_main!(benches);
