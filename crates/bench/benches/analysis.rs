//! Criterion benchmark: cost of the compile-time analysis itself.
//!
//! The paper claims the method is "computationally efficient as well"
//! because it deals only with index expressions; these benches measure
//! classification, footprint evaluation and partitioning as functions of
//! loop depth, reference count and processor count.

use alp::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn stencil_source(refs: usize) -> String {
    let mut rhs: Vec<String> = Vec::new();
    for r in 0..refs {
        rhs.push(format!("B[i+{}, j+{}]", r % 3, r % 5));
    }
    format!(
        "doall (i, 1, 1024) {{ doall (j, 1, 1024) {{ A[i,j] = {}; }} }}",
        rhs.join(" + ")
    )
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for refs in [2usize, 4, 8, 16] {
        let nest = parse(&stencil_source(refs)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(refs), &nest, |b, nest| {
            b.iter(|| classify(black_box(nest)))
        });
    }
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model_eval");
    let nest = parse(
        "doall (i, 1, 1024) { doall (j, 1, 1024) { doall (k, 1, 1024) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    let model = CostModel::from_nest(&nest);
    group.bench_function("theorem4_rect_3d", |b| {
        b.iter(|| model.cost_rect(black_box(&[15, 31, 63])))
    });
    let l = IMat::from_rows(&[&[16, 0, 0], &[4, 32, 0], &[0, 8, 64]]);
    group.bench_function("theorem2_general_3d", |b| {
        b.iter(|| model.cost_general(black_box(&l)))
    });
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    let nest = parse(
        "doall (i, 1, 1024) { doall (j, 1, 1024) { doall (k, 1, 1024) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    for p in [16i128, 64, 256] {
        group.bench_with_input(BenchmarkId::new("rect", p), &p, |b, &p| {
            b.iter(|| partition_rect(black_box(&nest), p))
        });
    }
    let nest2 =
        parse("doall (i, 1, 256) { doall (j, 1, 256) { A[i,j] = B[i,j] + B[i+1,j+3]; } }").unwrap();
    group.bench_function("parallelepiped_2d", |b| {
        b.iter(|| {
            optimize_parallelepiped(
                black_box(&nest2),
                16,
                &ParaSearchConfig {
                    max_entry: 2,
                    threads: 1,
                },
            )
        })
    });
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    let m = IMat::from_rows(&[
        &[3, 1, -2, 4],
        &[0, 5, 1, -1],
        &[2, 2, 7, 0],
        &[1, -3, 0, 6],
    ]);
    group.bench_function("det_4x4", |b| b.iter(|| black_box(&m).det().unwrap()));
    group.bench_function("hnf_4x4", |b| {
        b.iter(|| alp::linalg::row_hnf(black_box(&m)))
    });
    group.bench_function("snf_4x4", |b| {
        b.iter(|| alp::linalg::smith_normal_form(black_box(&m)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets = bench_classification,
    bench_cost_model,
    bench_partitioners,
    bench_linalg
}

criterion_main!(benches);
