//! Criterion benchmark: machine-simulator throughput (accesses/s) and
//! the cost of end-to-end partition evaluation by simulation — the
//! expensive alternative the analytical model replaces.

use alp::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [16i128, 32] {
        let nest = parse(&format!(
            "doall (i, 1, {n}) {{ doall (j, 1, {n}) {{
               A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1];
             }} }}"
        ))
        .unwrap();
        let assignment = assign_rect(&nest, &[4, 4]);
        let accesses = (n * n * 5) as u64;
        group.throughput(Throughput::Elements(accesses));
        group.bench_with_input(BenchmarkId::new("stencil_16p", n), &nest, |b, nest| {
            b.iter(|| {
                run_nest(
                    black_box(nest),
                    black_box(&assignment),
                    MachineConfig::uniform(16),
                    &UniformHome,
                )
            })
        });
    }
    group.finish();
}

fn bench_model_vs_simulation(c: &mut Criterion) {
    // The headline efficiency claim: evaluating a candidate tile with
    // Theorem 4 vs simulating it.
    let mut group = c.benchmark_group("evaluate_partition");
    let nest = parse(
        "doall (i, 1, 32) { doall (j, 1, 32) {
           A[i,j] = B[i,j] + B[i+2,j+1] + B[i-1,j+3];
         } }",
    )
    .unwrap();
    let model = CostModel::from_nest(&nest);
    group.bench_function("model_theorem4", |b| {
        b.iter(|| model.cost_rect(black_box(&[7, 7])))
    });
    let assignment = assign_rect(&nest, &[4, 4]);
    group.bench_function("simulation", |b| {
        b.iter(|| {
            run_nest(
                black_box(&nest),
                black_box(&assignment),
                MachineConfig::uniform(16),
                &UniformHome,
            )
        })
    });
    group.bench_function("exact_enumeration", |b| {
        let classes = classify(&nest);
        b.iter(|| {
            let tile = Tile::rect(black_box(&[7, 7]));
            classes
                .iter()
                .map(|cl| cumulative_footprint_exact(&tile, cl))
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets = bench_simulator_throughput, bench_model_vs_simulation
}

criterion_main!(benches);
