//! Integer lattices and lattice point counting.
//!
//! This crate implements the lattice theory of §3.7 of Agarwal, Kranz &
//! Natarajan: bounded lattices (Def. 9), the translated-lattice
//! intersection test (Theorem 3), the union-size formula (Lemma 3), and
//! exact integer-point counting inside the parallelepipeds `S(Q)`
//! (Def. 7) that describe footprints.
//!
//! The paper mostly *approximates* footprint sizes by `|det LG|` (its
//! Eq. 2); the exact counts provided here serve two purposes:
//!
//! 1. validation — every approximation theorem in `alp-footprint` is
//!    property-tested against the exact enumeration in this crate;
//! 2. the "exact footprint lattice" extension — for small tiles the exact
//!    counts are cheap and measurably more accurate (see the
//!    `model_accuracy` experiment).

pub mod bounded;
pub mod count;
pub mod lattice;
pub mod parallelepiped;

pub use bounded::BoundedLattice;
pub use count::{count_distinct_affine_values, count_rect_footprint_exact};
pub use lattice::Lattice;
pub use parallelepiped::Parallelepiped;
