//! Exact footprint counting for rectangular tiles (§3.8 of the paper).
//!
//! For a rectangular tile and a general reference matrix `G` the footprint
//! is the image of a coordinate box under `ī ↦ ī·G`.  When rows of `G`
//! are independent the map is one-to-one (Lemma 1) and the count equals
//! the box size (Theorem 5); otherwise distinct iterations can collide and
//! counting is genuinely harder.  The paper gives closed forms for loop
//! nestings `l ∈ {1, 2}` and for `l = 3, rank ≥ 2`, and suggests table
//! lookup elsewhere; we provide exact enumeration for all cases plus the
//! `l = 2, d = 1` closed form it alludes to.

use alp_linalg::{gcd, IMat, IVec};
use std::collections::HashSet;

/// Exact size of the footprint of the rectangular tile
/// `0 ≤ i_k ≤ bounds[k]` under the reference `ī ↦ ī·G` — counted by
/// enumeration.
///
/// Cost is the box volume; intended for validation and for the exact
/// small-tile mode of the analyzer.
///
/// # Panics
/// Panics if `bounds.len() != g.rows()` or any bound is negative.
pub fn count_rect_footprint_exact(g: &IMat, bounds: &[i128]) -> usize {
    assert_eq!(bounds.len(), g.rows(), "bounds/nesting mismatch");
    assert!(bounds.iter().all(|&b| b >= 0), "negative bound");
    let l = g.rows();
    let mut seen: HashSet<IVec> = HashSet::new();
    let mut i = vec![0i128; l];
    loop {
        seen.insert(g.apply_row(&IVec(i.clone())).expect("shape"));
        let mut k = 0;
        loop {
            if k == l {
                return seen.len();
            }
            i[k] += 1;
            if i[k] <= bounds[k] {
                break;
            }
            i[k] = 0;
            k += 1;
        }
    }
}

/// Exact number of **distinct values** of `Σ c_k·i_k` over the box
/// `0 ≤ i_k ≤ bounds[k]` — the `d = 1` footprint count (references like
/// `A[2i + 3j]`).
///
/// Uses the closed form when it applies and falls back to enumeration:
///
/// * `l = 1`: the count is `λ + 1` when `c ≠ 0` (all values distinct),
///   else 1.
/// * `l = 2`, both coefficients nonzero: write `|c₁| = g·p`, `|c₂| = g·q`
///   with `gcd(p, q) = 1`.  Every achievable value is a multiple of `g`.
///   When one reduced coefficient is 1 — say `p = 1` — and the unit side
///   spans a full residue window (`λ₁ ≥ q − 1`), the image is the whole
///   interval `[0, λ₁ + q·λ₂]`: count `λ₁ + q·λ₂ + 1`.  With both
///   `p, q ≥ 2` the interval is **never** complete (`p·i + q·j` has
///   numerical-semigroup gaps — e.g. `2i + 3j ≠ 1` — regardless of the
///   bounds), so we enumerate.
/// * `l ≥ 3`: enumerate (the paper's "table lookup" case).
pub fn count_distinct_affine_values(coeffs: &[i128], bounds: &[i128]) -> i128 {
    assert_eq!(coeffs.len(), bounds.len(), "coeffs/bounds mismatch");
    assert!(bounds.iter().all(|&b| b >= 0), "negative bound");
    // Dimensions with zero coefficient contribute nothing.
    let active: Vec<(i128, i128)> = coeffs
        .iter()
        .zip(bounds)
        .filter(|(&c, _)| c != 0)
        .map(|(&c, &b)| (c.abs(), b))
        .collect();
    match active.len() {
        0 => 1,
        1 => active[0].1 + 1,
        2 => {
            let (c1, l1) = active[0];
            let (c2, l2) = active[1];
            let g = gcd(c1, c2);
            let (p, q) = (c1 / g, c2 / g);
            if p == 1 && l1 >= q - 1 {
                // Unit stride covers every residue: contiguous interval.
                l1 + q * l2 + 1
            } else if q == 1 && l2 >= p - 1 {
                p * l1 + l2 + 1
            } else {
                enumerate_values(&active)
            }
        }
        _ => enumerate_values(&active),
    }
}

fn enumerate_values(active: &[(i128, i128)]) -> i128 {
    let mut seen: HashSet<i128> = HashSet::new();
    let n = active.len();
    let mut idx = vec![0i128; n];
    loop {
        let v: i128 = active.iter().zip(&idx).map(|(&(c, _), &i)| c * i).sum();
        seen.insert(v);
        let mut k = 0;
        loop {
            if k == n {
                return seen.len() as i128;
            }
            idx[k] += 1;
            if idx[k] <= active[k].1 {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn theorem5_independent_rows() {
        // G = I: footprint size == box size (Theorem 5).
        let g = IMat::identity(2);
        assert_eq!(count_rect_footprint_exact(&g, &[3, 4]), 4 * 5);
        // Skewed but independent rows: still box size.
        let g = IMat::from_rows(&[&[1, 1], &[1, -1]]);
        assert_eq!(count_rect_footprint_exact(&g, &[3, 4]), 4 * 5);
        // Nonsingular non-unimodular: injective, still box size.
        let g = IMat::from_rows(&[&[2, 0], &[0, 3]]);
        assert_eq!(count_rect_footprint_exact(&g, &[3, 4]), 4 * 5);
    }

    #[test]
    fn dependent_rows_collide() {
        // A[i+j] in a 2-nest: values 0..λ1+λ2.
        let g = IMat::from_rows(&[&[1], &[1]]);
        assert_eq!(count_rect_footprint_exact(&g, &[3, 4]), 8);
        assert_eq!(count_distinct_affine_values(&[1, 1], &[3, 4]), 8);
    }

    #[test]
    fn single_dim_counts() {
        assert_eq!(count_distinct_affine_values(&[2], &[5]), 6);
        assert_eq!(count_distinct_affine_values(&[0], &[5]), 1);
        assert_eq!(count_distinct_affine_values(&[], &[]), 1);
        assert_eq!(count_distinct_affine_values(&[-3], &[4]), 5);
    }

    #[test]
    fn two_dim_unit_coefficient_formula() {
        // i + 3j over 0..=5, 0..=5: unit stride saturates (5 >= 3-1):
        // count = 5 + 3*5 + 1 = 21.
        assert_eq!(count_distinct_affine_values(&[1, 3], &[5, 5]), 21);
        // Symmetric side: 4i + j over 0..=5, 0..=5 (5 >= 4-1): 4*5+5+1.
        assert_eq!(count_distinct_affine_values(&[4, 1], &[5, 5]), 26);
    }

    #[test]
    fn two_dim_semigroup_gaps_enumerated() {
        // 2i + 3j over 0..=5, 0..=5: the values 1 and 24 are unreachable
        // (numerical-semigroup gap and its mirror), so the count is 24,
        // not the interval length 26.  A naive "saturation" formula gets
        // this wrong; we enumerate.
        assert_eq!(count_distinct_affine_values(&[2, 3], &[5, 5]), 24);
        // The proptest's original counterexample: 2i + 3j, 0..=2, 0..=1.
        assert_eq!(count_distinct_affine_values(&[2, 3], &[2, 1]), 6);
    }

    #[test]
    fn two_dim_gappy() {
        // 3i + 5j over tiny box 0..=1, 0..=1: {0,3,5,8} = 4 values
        // (formula would give 3+5+1 = 9; unsaturated, enumerated).
        assert_eq!(count_distinct_affine_values(&[3, 5], &[1, 1]), 4);
    }

    #[test]
    fn common_factor() {
        // 2i + 4j: all even; reduced 1i+2j over 0..=2, 0..=2 saturated:
        // 1*2+2*2+1 = 7.
        assert_eq!(count_distinct_affine_values(&[2, 4], &[2, 2]), 7);
    }

    #[test]
    fn three_dim_enumerated() {
        // i + j + k over 0..=1 each: values 0..3 = 4.
        assert_eq!(count_distinct_affine_values(&[1, 1, 1], &[1, 1, 1]), 4);
    }

    proptest! {
        #[test]
        fn closed_form_matches_enumeration_2d(
            c1 in 1i128..=6, c2 in 1i128..=6,
            l1 in 0i128..=8, l2 in 0i128..=8,
        ) {
            let fast = count_distinct_affine_values(&[c1, c2], &[l1, l2]);
            let slow = enumerate_values(&[(c1, l1), (c2, l2)]);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn exact_count_injective_when_rows_independent(
            e in proptest::collection::vec(-3i128..=3, 4),
            l1 in 0i128..=4, l2 in 0i128..=4,
        ) {
            let g = IMat::from_vec(2, 2, e);
            if g.rank() == 2 {
                prop_assert_eq!(
                    count_rect_footprint_exact(&g, &[l1, l2]) as i128,
                    (l1 + 1) * (l2 + 1)
                );
            }
        }

        #[test]
        fn footprint_count_bounded_by_box(
            e in proptest::collection::vec(-3i128..=3, 4),
            l1 in 0i128..=4, l2 in 0i128..=4,
        ) {
            let g = IMat::from_vec(2, 2, e);
            let n = count_rect_footprint_exact(&g, &[l1, l2]) as i128;
            prop_assert!(n >= 1 && n <= (l1 + 1) * (l2 + 1));
        }
    }
}
