//! Parallelepipeds `S(Q)` in the data space (Def. 7) and their integer
//! points.

use alp_linalg::{solve_rational, IMat, IVec, Rat};

/// The closed parallelepiped `S(Q) = {Σ aᵢ·q̄ᵢ : 0 ≤ aᵢ ≤ 1}` spanned by
/// the rows of `Q` (Def. 7 of the paper).
///
/// For a loop tile `L` and reference matrix `G`, the footprint lives on or
/// inside `S(LG)`; when `G` is unimodular the footprint is *exactly* the
/// integer points of `S(LG)` (Theorem 1).
#[derive(Debug, Clone)]
pub struct Parallelepiped {
    q: IMat,
}

impl Parallelepiped {
    /// Parallelepiped spanned by the rows of `q`.
    pub fn new(q: IMat) -> Self {
        Parallelepiped { q }
    }

    /// The spanning matrix.
    pub fn matrix(&self) -> &IMat {
        &self.q
    }

    /// `|det Q|` — the paper's Eq. 2 volume estimate of the footprint
    /// size.  Errors if `Q` is not square.
    pub fn volume(&self) -> alp_linalg::Result<i128> {
        Ok(self.q.det()?.abs())
    }

    /// Membership of a real/integer point: does some `a ∈ [0,1]^m` give
    /// `x = a·Q`?
    ///
    /// Exact over the rationals.  When the rows of `Q` are linearly
    /// independent the coefficient vector is unique, so the test is
    /// complete; with dependent rows a `None` from the single solve may
    /// under-approximate (the analysis always reduces to independent rows
    /// via §3.4.1 before calling this).
    pub fn contains(&self, x: &IVec) -> bool {
        match solve_rational(&self.q, x) {
            Some(a) => a.iter().all(|&ai| Rat::ZERO <= ai && ai <= Rat::ONE),
            None => false,
        }
    }

    /// Axis-aligned bounding box of the parallelepiped:
    /// coordinate `j` ranges over `[Σᵢ min(0, qᵢⱼ), Σᵢ max(0, qᵢⱼ)]`.
    pub fn bounding_box(&self) -> Vec<(i128, i128)> {
        (0..self.q.cols())
            .map(|j| {
                let mut lo = 0i128;
                let mut hi = 0i128;
                for i in 0..self.q.rows() {
                    let e = self.q[(i, j)];
                    if e < 0 {
                        lo += e;
                    } else {
                        hi += e;
                    }
                }
                (lo, hi)
            })
            .collect()
    }

    /// Enumerate all integer points on or inside the parallelepiped.
    ///
    /// Exhaustive scan of the bounding box — exponential in dimension, fine
    /// for the ≤4-dimensional data spaces of loop analysis and used mainly
    /// for validating the determinant estimates.
    pub fn integer_points(&self) -> Vec<IVec> {
        let bb = self.bounding_box();
        let mut out = Vec::new();
        let n = bb.len();
        if n == 0 {
            return out;
        }
        let mut x: Vec<i128> = bb.iter().map(|&(lo, _)| lo).collect();
        loop {
            let v = IVec(x.clone());
            if self.contains(&v) {
                out.push(v);
            }
            let mut k = 0;
            loop {
                if k == n {
                    return out;
                }
                x[k] += 1;
                if x[k] <= bb[k].1 {
                    break;
                }
                x[k] = bb[k].0;
                k += 1;
            }
        }
    }

    /// Exact count of integer points in a 2-D parallelogram via Pick's
    /// theorem: `#(interior ∪ boundary) = |det| + (gcd(v̄₁) + gcd(v̄₂)) + 1`
    /// where `gcd(v̄)` is the gcd of the components of a side vector.
    ///
    /// Degenerate (zero-area) parallelograms fall back to enumeration.
    /// Errors if `Q` is not 2×2.
    pub fn exact_count_2d(&self) -> alp_linalg::Result<i128> {
        if self.q.rows() != 2 || self.q.cols() != 2 {
            return Err(alp_linalg::LinalgError::ShapeMismatch {
                left: (self.q.rows(), self.q.cols()),
                right: (2, 2),
            });
        }
        let area = self.q.det()?.abs();
        if area == 0 {
            return Ok(self.integer_points().len() as i128);
        }
        let g1 = self.q.row(0).content();
        let g2 = self.q.row(1).content();
        Ok(area + g1 + g2 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_square() {
        let p = Parallelepiped::new(IMat::identity(2));
        assert_eq!(p.volume().unwrap(), 1);
        let pts = p.integer_points();
        assert_eq!(pts.len(), 4); // corners of the closed unit square
        assert_eq!(p.exact_count_2d().unwrap(), 4);
    }

    #[test]
    fn scaled_box() {
        let p = Parallelepiped::new(IMat::diag(&[3, 2]));
        assert_eq!(p.volume().unwrap(), 6);
        assert_eq!(p.integer_points().len(), 4 * 3); // (3+1)*(2+1)
        assert_eq!(p.exact_count_2d().unwrap(), 12);
    }

    #[test]
    fn example6_footprint_count() {
        // Example 6 of the paper: LG = [[2L1, L1], [L2, 0]].  The paper
        // counts L1·L2 + L1 + L2 (+1 for the closed corner, which it
        // drops).  Check exactly for L1 = 4, L2 = 3.
        let (l1, l2) = (4i128, 3i128);
        let p = Parallelepiped::new(IMat::from_rows(&[&[2 * l1, l1], &[l2, 0]]));
        assert_eq!(p.volume().unwrap(), l1 * l2);
        let exact = p.integer_points().len() as i128;
        assert_eq!(exact, p.exact_count_2d().unwrap());
        assert_eq!(exact, l1 * l2 + l1 + l2 + 1);
    }

    #[test]
    fn skewed_parallelogram_membership() {
        let p = Parallelepiped::new(IMat::from_rows(&[&[2, 1], &[1, 2]]));
        assert!(p.contains(&IVec::new(&[0, 0])));
        assert!(p.contains(&IVec::new(&[3, 3]))); // far corner
        assert!(p.contains(&IVec::new(&[1, 1]))); // center-ish
        assert!(!p.contains(&IVec::new(&[2, 0]))); // outside the skew
        assert!(!p.contains(&IVec::new(&[4, 4])));
    }

    #[test]
    fn degenerate_segment() {
        // Rank-1 "parallelogram": the segment 0..(2,4).
        let p = Parallelepiped::new(IMat::from_rows(&[&[2, 4], &[0, 0]]));
        let pts = p.integer_points();
        // Points (0,0), (1,2), (2,4).
        assert_eq!(pts.len(), 3);
        assert_eq!(p.exact_count_2d().unwrap(), 3);
    }

    #[test]
    fn bounding_box_mixed_signs() {
        let p = Parallelepiped::new(IMat::from_rows(&[&[3, -1], &[-2, 2]]));
        assert_eq!(p.bounding_box(), vec![(-2, 3), (-1, 2)]);
    }

    #[test]
    fn three_d_volume() {
        let p = Parallelepiped::new(IMat::diag(&[2, 2, 2]));
        assert_eq!(p.volume().unwrap(), 8);
        assert_eq!(p.integer_points().len(), 27);
    }

    fn arb_q() -> impl Strategy<Value = IMat> {
        proptest::collection::vec(-5i128..=5, 4).prop_map(|v| IMat::from_vec(2, 2, v))
    }

    proptest! {
        #[test]
        fn pick_matches_enumeration(q in arb_q()) {
            let p = Parallelepiped::new(q.clone());
            if q.rank() == 2 {
                prop_assert_eq!(
                    p.exact_count_2d().unwrap(),
                    p.integer_points().len() as i128,
                    "Pick count vs enumeration for {}", q
                );
            }
        }

        #[test]
        fn det_lower_bounds_count(q in arb_q()) {
            // The closed parallelepiped always contains at least |det|
            // integer points... strictly speaking |det| counts half-open
            // cells, so closed count >= |det|.
            let p = Parallelepiped::new(q);
            prop_assert!(p.integer_points().len() as i128 >= p.volume().unwrap());
        }

        #[test]
        fn all_enumerated_points_contained(q in arb_q()) {
            let p = Parallelepiped::new(q);
            for x in p.integer_points() {
                prop_assert!(p.contains(&x));
            }
        }
    }
}
