//! Bounded lattices: Definition 9, Theorem 3 and Lemma 3 of the paper.

use alp_linalg::{solve_integer, IMat, IVec, LinalgError, Result};
use std::collections::HashSet;

/// A bounded lattice `L(ā₁,…,āₗ, λ₁,…,λₗ) = {Σ lᵢāᵢ : lᵢ ∈ Z, 0 ≤ lᵢ ≤ λᵢ}`
/// (Def. 9).
///
/// The generators are required to be linearly independent, which is the
/// setting of Theorem 4: the rows of a nonsingular reference matrix `G`
/// scaled by a rectangular tile.  Independence makes coefficient vectors
/// unique, so membership and intersection tests are exact integer solves.
#[derive(Debug, Clone)]
pub struct BoundedLattice {
    basis: IMat,
    bounds: Vec<i128>,
}

impl BoundedLattice {
    /// Create a bounded lattice from independent generator rows and
    /// non-negative inclusive bounds.
    ///
    /// Errors with [`LinalgError::Singular`] if the rows are dependent and
    /// [`LinalgError::Empty`] on a bounds-length mismatch or a negative
    /// bound.
    pub fn new(basis: IMat, bounds: Vec<i128>) -> Result<Self> {
        if bounds.len() != basis.rows() || bounds.iter().any(|&b| b < 0) {
            return Err(LinalgError::Empty);
        }
        if basis.rank() != basis.rows() {
            return Err(LinalgError::Singular);
        }
        Ok(BoundedLattice { basis, bounds })
    }

    /// Number of generators.
    pub fn dim(&self) -> usize {
        self.basis.rows()
    }

    /// The generator matrix (rows are the `āᵢ`).
    pub fn basis(&self) -> &IMat {
        &self.basis
    }

    /// The inclusive coefficient bounds `λᵢ`.
    pub fn bounds(&self) -> &[i128] {
        &self.bounds
    }

    /// Number of points: `Π (λᵢ + 1)` — exact because independent
    /// generators give distinct points for distinct coefficient vectors.
    pub fn size(&self) -> i128 {
        self.bounds.iter().map(|&b| b + 1).product()
    }

    /// Enumerate every point of the bounded lattice.
    pub fn points(&self) -> Vec<IVec> {
        let mut out = Vec::new();
        let l = self.dim();
        let mut coeff = vec![0i128; l];
        loop {
            out.push(self.basis.apply_row(&IVec(coeff.clone())).expect("shape"));
            // Odometer increment over the coefficient box.
            let mut k = 0;
            loop {
                if k == l {
                    return out;
                }
                coeff[k] += 1;
                if coeff[k] <= self.bounds[k] {
                    break;
                }
                coeff[k] = 0;
                k += 1;
            }
        }
    }

    /// Membership test: integer coefficients within the bounds.
    pub fn contains(&self, x: &IVec) -> bool {
        match solve_integer(&self.basis, x) {
            Some(u) => {
                u.0.iter()
                    .zip(&self.bounds)
                    .all(|(&ui, &b)| 0 <= ui && ui <= b)
            }
            None => false,
        }
    }

    /// Theorem 3: does this bounded lattice intersect its own translation
    /// by `t`?
    ///
    /// True iff `t = Σ uᵢāᵢ` for integer `uᵢ` with `|uᵢ| ≤ λᵢ` (the paper
    /// states `0 ≤ uᵢ ≤ λᵢ` because its translation vectors — spreads —
    /// are non-negative combinations; allowing negative `uᵢ` handles a
    /// translation in any direction, since `L ∩ (L + t) ≠ ∅ ⇔
    /// L ∩ (L − t) ≠ ∅`).
    pub fn intersects_translate(&self, t: &IVec) -> bool {
        match solve_integer(&self.basis, t) {
            Some(u) => u.0.iter().zip(&self.bounds).all(|(&ui, &b)| ui.abs() <= b),
            None => false,
        }
    }

    /// The translation coefficients `u` with `t = Σ uᵢāᵢ`, if integral.
    pub fn translate_coefficients(&self, t: &IVec) -> Option<IVec> {
        solve_integer(&self.basis, t)
    }

    /// Lemma 3, exact form: `|L ∪ (L + t)| = 2·Π(λⱼ+1) − Π(λⱼ+1−|uⱼ|)`
    /// where `t = Σ uⱼāⱼ`.
    ///
    /// Returns `None` if `t` is not in the (unbounded) lattice — in that
    /// case the union is simply `2·Π(λⱼ+1)` because the translated copy is
    /// disjoint (coefficient uniqueness).
    pub fn union_size_translate_exact(&self, t: &IVec) -> i128 {
        let full = self.size();
        match solve_integer(&self.basis, t) {
            Some(u) => {
                let overlap: i128 =
                    u.0.iter()
                        .zip(&self.bounds)
                        .map(|(&ui, &b)| (b + 1 - ui.abs()).max(0))
                        .product();
                2 * full - overlap
            }
            None => 2 * full,
        }
    }

    /// Lemma 3, the paper's approximation:
    /// `Π(λⱼ+1) + Σᵢ |uᵢ|·Π_{j≠i}(λⱼ+1) − Π|uᵢ|`.
    pub fn union_size_translate_approx(&self, t: &IVec) -> Option<i128> {
        let u = solve_integer(&self.basis, t)?;
        let l = self.dim();
        let full = self.size();
        let mut cross = 0i128;
        for i in 0..l {
            let mut term = u[i].abs();
            for (j, &b) in self.bounds.iter().enumerate() {
                if j != i {
                    term *= b + 1;
                }
            }
            cross += term;
        }
        let corner: i128 = u.0.iter().map(|&ui| ui.abs()).product();
        Some(full + cross - corner)
    }

    /// Brute-force union size (for validating Lemma 3 in tests).
    pub fn union_size_translate_brute(&self, t: &IVec) -> usize {
        let mut set: HashSet<IVec> = self.points().into_iter().collect();
        for p in self.points() {
            set.insert(p.add(t).expect("shape"));
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square_lattice(bounds: &[i128]) -> BoundedLattice {
        BoundedLattice::new(IMat::identity(bounds.len()), bounds.to_vec()).unwrap()
    }

    #[test]
    fn rejects_dependent_generators() {
        let r = BoundedLattice::new(IMat::from_rows(&[&[1, 2], &[2, 4]]), vec![3, 3]);
        assert!(matches!(r, Err(LinalgError::Singular)));
    }

    #[test]
    fn rejects_bad_bounds() {
        assert!(BoundedLattice::new(IMat::identity(2), vec![3]).is_err());
        assert!(BoundedLattice::new(IMat::identity(2), vec![3, -1]).is_err());
    }

    #[test]
    fn size_and_points_agree() {
        let l = square_lattice(&[2, 3]);
        assert_eq!(l.size(), 12);
        let pts = l.points();
        assert_eq!(pts.len(), 12);
        let distinct: HashSet<_> = pts.into_iter().collect();
        assert_eq!(distinct.len(), 12);
    }

    #[test]
    fn membership_box() {
        let l = square_lattice(&[2, 2]);
        assert!(l.contains(&IVec::new(&[0, 0])));
        assert!(l.contains(&IVec::new(&[2, 2])));
        assert!(!l.contains(&IVec::new(&[3, 0])));
        assert!(!l.contains(&IVec::new(&[-1, 0])));
    }

    #[test]
    fn theorem3_box() {
        let l = square_lattice(&[4, 4]);
        assert!(l.intersects_translate(&IVec::new(&[4, 4])));
        assert!(l.intersects_translate(&IVec::new(&[-4, 4])));
        assert!(!l.intersects_translate(&IVec::new(&[5, 0])));
        assert!(l.intersects_translate(&IVec::new(&[0, 0])));
    }

    #[test]
    fn theorem3_skewed_basis() {
        // Basis rows (1,1), (1,-1), bounds 3: t = (4,2) = 3(1,1)+1(1,-1)
        // is inside; t = (8,0) = 4(1,1)+4(1,-1) is out of bounds;
        // t = (1,0) is not even in the lattice.
        let l = BoundedLattice::new(IMat::from_rows(&[&[1, 1], &[1, -1]]), vec![3, 3]).unwrap();
        assert!(l.intersects_translate(&IVec::new(&[4, 2])));
        assert!(!l.intersects_translate(&IVec::new(&[8, 0])));
        assert!(!l.intersects_translate(&IVec::new(&[1, 0])));
    }

    #[test]
    fn example10_class2_intersection() {
        // References C(i,2i,i+2j-1), C(i,2i,i+2j+1), C(i+1,2i+2,i+2j+1):
        // offsets differ by (0,0,2) (intersecting: 2 = 2*1 in the j column)
        // and by (1,2,2).  With G rows g_i = (1,2,1), g_j = (0,0,2):
        // (0,0,2) = 0*g_i + 1*g_j: in lattice.  (1,2,2) = 1*g_i + (1/2)g_j:
        // not an integer combination, so not intersecting (Theorem 3).
        let g = IMat::from_rows(&[&[1, 2, 1], &[0, 0, 2]]);
        let l = BoundedLattice::new(g, vec![10, 10]).unwrap();
        assert!(l.intersects_translate(&IVec::new(&[0, 0, 2])));
        assert!(!l.intersects_translate(&IVec::new(&[1, 2, 2])));
    }

    #[test]
    fn lemma3_exact_simple() {
        // 1-D: λ = 4 (5 points), shift by 2 -> union = {0..6} = 7 = 2*5-3.
        let l = square_lattice(&[4]);
        assert_eq!(l.union_size_translate_exact(&IVec::new(&[2])), 7);
        assert_eq!(l.union_size_translate_brute(&IVec::new(&[2])), 7);
    }

    #[test]
    fn lemma3_disjoint_translate() {
        let l = square_lattice(&[2]);
        // Shift by 7 > λ+1: disjoint, union = 6.
        assert_eq!(l.union_size_translate_exact(&IVec::new(&[7])), 6);
        assert_eq!(l.union_size_translate_brute(&IVec::new(&[7])), 6);
    }

    #[test]
    fn lemma3_off_lattice_translate() {
        // Basis 2Z, translate by 1: copies interleave, never coincide.
        let l = BoundedLattice::new(IMat::from_rows(&[&[2]]), vec![3]).unwrap();
        assert_eq!(l.union_size_translate_exact(&IVec::new(&[1])), 8);
        assert_eq!(l.union_size_translate_brute(&IVec::new(&[1])), 8);
    }

    fn arb_basis_2d() -> impl Strategy<Value = IMat> {
        proptest::collection::vec(-3i128..=3, 4)
            .prop_map(|v| IMat::from_vec(2, 2, v))
            .prop_filter("independent", |m| m.rank() == 2)
    }

    proptest! {
        #[test]
        fn lemma3_exact_matches_brute(
            basis in arb_basis_2d(),
            bounds in proptest::collection::vec(0i128..=4, 2),
            coeffs in proptest::collection::vec(-6i128..=6, 2),
        ) {
            let l = BoundedLattice::new(basis.clone(), bounds).unwrap();
            let t = basis.apply_row(&IVec(coeffs)).unwrap();
            prop_assert_eq!(
                l.union_size_translate_exact(&t),
                l.union_size_translate_brute(&t) as i128
            );
        }

        #[test]
        fn theorem3_matches_brute_membership(
            basis in arb_basis_2d(),
            bounds in proptest::collection::vec(0i128..=3, 2),
            t in proptest::collection::vec(-8i128..=8, 2),
        ) {
            let l = BoundedLattice::new(basis, bounds).unwrap();
            let t = IVec(t);
            // Brute force: some point p with p and p - t both in L.
            let brute = l.points().iter().any(|p| {
                let q = p.sub(&t).unwrap();
                l.contains(&q)
            });
            prop_assert_eq!(l.intersects_translate(&t), brute);
        }

        #[test]
        fn points_all_contained(
            basis in arb_basis_2d(),
            bounds in proptest::collection::vec(0i128..=3, 2),
        ) {
            let l = BoundedLattice::new(basis, bounds).unwrap();
            for p in l.points() {
                prop_assert!(l.contains(&p));
            }
        }
    }
}
