//! Offline stand-in for `proptest`: a small but *real* property-testing
//! engine covering the API subset this workspace uses.
//!
//! What works like upstream: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range and tuple strategies,
//! `Just`/`any`/`prop_oneof!`, `collection::vec`, the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map` combinators,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and a
//! deterministic per-test runner.
//!
//! What doesn't: shrinking.  A failure reports the case number and the
//! seed; set `PROPTEST_SEED=<seed>` to reproduce a failing run exactly.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SampleRange, SeedableRng};

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated across
        /// the whole run before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried with
        /// fresh ones.
        Reject(String),
        /// A `prop_assert!`-style failure.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for `seed`.
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// Uniform sample from an integer range.
        pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample_single(&mut self.0)
        }

        /// Raw 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Base seed for a named test: `PROPTEST_SEED` if set, otherwise a
    /// stable hash of the test name (so runs are reproducible and
    /// distinct tests explore distinct sequences).
    pub fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: draw inputs from `strategy`, run `body`, and
    /// repeat for `config.cases` passing cases.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// body returns [`TestCaseError::Fail`], or when rejections exceed
    /// `config.max_global_rejects`.
    pub fn execute<S, F>(config: &Config, name: &str, strategy: &S, body: F)
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = base_seed(name);
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut draw = 0u64;
        while case < config.cases {
            let seed = base.wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed_u64(seed);
            draw += 1;
            let value = strategy.generate(&mut rng);
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "{name}: too many prop_assume! rejections \
                             ({rejects}) — strategy too narrow"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: property failed at case {case} \
                         (PROPTEST_SEED={base}, draw {d}): {msg}",
                        d = draw - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values (upstream's `Strategy`, minus shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `f` (retries internally).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Map-and-filter in one step (retries internally on `None`).
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// How many retries a filtering combinator attempts before giving up.
    const FILTER_RETRIES: usize = 10_000;

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected every candidate", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map({:?}) rejected every candidate",
                self.reason
            );
        }
    }

    /// A type-erased strategy (cheaply clonable).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the alternatives.
        ///
        /// # Panics
        /// Panics if `alts` is empty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs an alternative");
            Union(alts)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.sample(0usize..self.0.len());
            self.0[k].generate(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )+};
    }

    impl_range_strategies!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (upstream's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical full-range strategy for primitives.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrim<T>(pub std::marker::PhantomData<T>);

    impl Strategy for AnyPrim<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrim(std::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(<$t>::MIN..=<$t>::MAX)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrim(std::marker::PhantomData)
                }
            }
        )+};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.sample(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::arbitrary::AnyPrim;

    /// `proptest::bool::ANY`.
    pub const ANY: AnyPrim<bool> = AnyPrim(std::marker::PhantomData);
}

/// Define property tests.  Supports the upstream forms used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(a in 0i128..=3, b in arb_thing()) { prop_assert!(a >= 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::execute(
                &__config,
                stringify!($name),
                &__strategy,
                |__values| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    let ($($arg,)+) = __values;
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Assert inside a property body; failures report the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), __a, __b, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Reject the current case (draw fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..100).prop_filter("even", |n| n % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in -3i128..=3, b in 1usize..5) {
            prop_assert!((-3..=3).contains(&a));
            prop_assert!((1..5).contains(&b));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0i32..10, any::<bool>()), 0..=4),
            e in evens(),
            w in prop_oneof![Just("A"), Just("B")],
        ) {
            prop_assert!(v.len() <= 4);
            prop_assert_eq!(e % 2, 0);
            prop_assert!(w == "A" || w == "B");
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..=3).prop_flat_map(|n| {
            crate::collection::vec(0u8..=9, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_retries(n in 0i32..10) {
            prop_assume!(n != 5);
            prop_assert_ne!(n, 5);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::execute(
                &ProptestConfig::with_cases(8),
                "always_fails",
                &(0i32..10),
                |_n| -> Result<(), TestCaseError> { Err(TestCaseError::fail("expected failure")) },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("expected failure"), "{msg}");
        assert!(msg.contains("PROPTEST_SEED"), "{msg}");
    }
}
