//! Offline stand-in for the parts of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng`] and [`Rng::gen_range`] over integer
//! ranges.  Backed by xoshiro256++ with SplitMix64 seed expansion — fast,
//! deterministic, and statistically solid for test/bench workloads.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool_uniform(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Namespaces mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (k, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[k * 8..k * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// A range that can be sampled uniformly (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn next_u128<R: RngCore>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// Uniform value in `[0, span)` for `span >= 1`, by rejection from the
/// largest multiple of `span` below `2^128` (no modulo bias).
fn uniform_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let r = next_u128(rng);
        if r <= zone {
            return r % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u128
                    & (u128::MAX >> (128 - <$t>::BITS));
                let off = uniform_below(rng, span);
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u128
                    & (u128::MAX >> (128 - <$t>::BITS));
                if span == u128::MAX {
                    return next_u128(rng) as $t;
                }
                let off = uniform_below(rng, span + 1);
                lo.wrapping_add(off as $t)
            }
        }
    )+};
}

impl_int_ranges!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-3i128..=3);
            assert_eq!(x, b.gen_range(-3i128..=3));
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let x = rng.gen_range(0usize..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..=u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..=u64::MAX)).collect();
        assert_ne!(xs, ys);
    }
}
