//! Offline stand-in for the `crossbeam` facade: the scoped-thread API
//! (`crossbeam::scope`, `Scope::spawn`, `ScopedJoinHandle::join`) backed
//! by `std::thread::scope`.
//!
//! Semantics match upstream where this workspace relies on them: spawned
//! threads may borrow from the enclosing stack, the scope joins every
//! thread before returning, and a panic in an unjoined child surfaces as
//! `Err` from [`scope`] rather than a propagated panic.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.  Like crossbeam (and unlike
        /// `std`), the closure receives the scope again so it can spawn
        /// siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns.  A panic in an unjoined child is returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("crossbeam scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .expect("scope");
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_is_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
