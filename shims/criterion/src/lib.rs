//! Offline stand-in for `criterion`: a text-only micro-benchmark harness
//! implementing the API subset this workspace's benches use.
//!
//! Each benchmark is warmed up, its per-iteration time estimated, and
//! then measured over `sample_size` samples; mean and min/max are
//! printed to stdout.  There are no plots, no statistics beyond the
//! summary line, and no saved baselines — but timings are real, so
//! relative comparisons between benchmarks remain meaningful.
//!
//! Passing `--test` (as `cargo test --benches` does) runs each
//! benchmark body once, as a smoke test, without timing loops.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by [`Criterion`] and benchmark groups.
#[derive(Debug, Clone)]
struct Settings {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    quick: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            quick: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The benchmark manager (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, name, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Record the per-iteration workload size (accepted for API parity;
    /// the shim does not derive throughput rates from it).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&self.settings, &label, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&self.settings, &label, f);
        self
    }

    /// Finish the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Workload-size annotations (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter as the identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Mean seconds per iteration, recorded by `iter`.
    mean: f64,
    /// (min, max) seconds per iteration across samples.
    spread: (f64, f64),
    ran: bool,
}

impl Bencher<'_> {
    /// Measure `routine`: warm up, pick an iteration count that fills
    /// the measurement budget, then time `sample_size` samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.ran = true;
        if self.settings.quick {
            black_box(routine());
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Split the measurement budget into sample_size samples.
        let budget = self.settings.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (total_iters / self.settings.sample_size as u64).max(1);

        let mut times = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        self.mean = times.iter().sum::<f64>() / times.len() as f64;
        self.spread = times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_benchmark<F>(settings: &Settings, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        settings,
        mean: 0.0,
        spread: (0.0, 0.0),
        ran: false,
    };
    f(&mut b);
    if settings.quick {
        println!("{label}: ok (smoke)");
    } else if b.ran {
        println!(
            "{label}: time [{} .. {} .. {}]",
            fmt_time(b.spread.0),
            fmt_time(b.mean),
            fmt_time(b.spread.1),
        );
    } else {
        println!("{label}: no measurement (Bencher::iter never called)");
    }
}

/// Declare a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    (0..n).sum::<u64>()
                })
            });
            g.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("16x2").0, "16x2");
    }
}
